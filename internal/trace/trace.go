// Package trace records structured runtime events. The experiment
// harness uses it to count overhead contributors (spawns, page copies,
// eliminations, message-layer decisions) that the paper's §4 analysis
// decomposes into setup, runtime, and selection overhead.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"altrun/internal/ids"
)

// Kind classifies an event.
type Kind int

// Event kinds, covering the lifecycle the paper describes in §3.
const (
	KindSpawn Kind = iota + 1
	KindGuardPass
	KindGuardFail
	KindCommit
	KindTooLate
	KindEliminate
	KindBlockFail
	KindTimeout
	KindPageCopy
	KindPageFault
	KindCompaction
	KindMsgSend
	KindMsgAccept
	KindMsgIgnore
	KindMsgSplit
	KindWorldSplit
	KindContradiction
	KindSourceBlocked
	KindSourceOp
	KindCheckpoint
	KindRestore
	KindVote
)

var kindNames = map[Kind]string{
	KindSpawn:         "spawn",
	KindGuardPass:     "guard-pass",
	KindGuardFail:     "guard-fail",
	KindCommit:        "commit",
	KindTooLate:       "too-late",
	KindEliminate:     "eliminate",
	KindBlockFail:     "block-fail",
	KindTimeout:       "timeout",
	KindPageCopy:      "page-copy",
	KindPageFault:     "page-fault",
	KindCompaction:    "compaction",
	KindMsgSend:       "msg-send",
	KindMsgAccept:     "msg-accept",
	KindMsgIgnore:     "msg-ignore",
	KindMsgSplit:      "msg-split",
	KindWorldSplit:    "world-split",
	KindContradiction: "contradiction",
	KindSourceBlocked: "source-blocked",
	KindSourceOp:      "source-op",
	KindCheckpoint:    "checkpoint",
	KindRestore:       "restore",
	KindVote:          "vote",
}

// String renders the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one recorded occurrence.
type Event struct {
	Time   time.Time
	Kind   Kind
	PID    ids.PID
	Detail string
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("%s %s %v %s", e.Time.Format("15:04:05.000000"), e.Kind, e.PID, e.Detail)
}

// Log is an event log, safe for concurrent use. A nil *Log is valid
// and discards everything, so tracing can be disabled without branches
// at call sites.
//
// By default the log is unbounded — the right mode for experiments,
// which want every event. A capped log (NewLogCapped) is a ring buffer
// that keeps only the most recent cap events and counts the rest as
// dropped, so a long-running daemon can leave tracing on without the
// log growing without bound.
type Log struct {
	mu     sync.Mutex
	cap    int // 0 = unbounded
	events []Event
	// head indexes the oldest event once the ring has wrapped.
	head    int
	wrapped bool
	dropped uint64
}

// NewLog returns an empty, unbounded log.
func NewLog() *Log { return &Log{} }

// DefaultLogCap is the ring size a capped log gets when the requested
// cap is not positive — sized for a daemon's /metrics debugging window,
// not for whole-experiment traces.
const DefaultLogCap = 65536

// NewLogCapped returns an empty log bounded to the most recent cap
// events (DefaultLogCap if cap <= 0). When full, each append overwrites
// the oldest event and increments Dropped.
func NewLogCapped(cap int) *Log {
	if cap <= 0 {
		cap = DefaultLogCap
	}
	return &Log{cap: cap}
}

// Cap returns the ring capacity (0 = unbounded).
func (l *Log) Cap() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cap
}

// Dropped returns how many events have been overwritten by the ring.
// Always zero for an unbounded log.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Add appends an event. No-op on a nil log.
func (l *Log) Add(t time.Time, kind Kind, pid ids.PID, detail string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ev := Event{Time: t, Kind: kind, PID: pid, Detail: detail}
	if l.cap > 0 && len(l.events) == l.cap {
		l.events[l.head] = ev
		l.head++
		if l.head == l.cap {
			l.head = 0
		}
		l.wrapped = true
		l.dropped++
		return
	}
	l.events = append(l.events, ev)
}

// Addf appends an event with a formatted detail string.
func (l *Log) Addf(t time.Time, kind Kind, pid ids.PID, format string, args ...any) {
	if l == nil {
		return
	}
	l.Add(t, kind, pid, fmt.Sprintf(format, args...))
}

// Events returns a copy of the recorded events, oldest first.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	if l.wrapped {
		n := copy(out, l.events[l.head:])
		copy(out[n:], l.events[:l.head])
	} else {
		copy(out, l.events)
	}
	return out
}

// Count returns how many events of the given kind were recorded.
func (l *Log) Count(kind Kind) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Len returns the total number of events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Reset discards all events (the cap, if any, is kept).
func (l *Log) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = nil
	l.head = 0
	l.wrapped = false
	l.dropped = 0
}

// SelCounters counts selection-path work: predicate resolutions, the
// worlds each resolution actually touched (the affected set), and
// contention on the sharded world registry. Unlike Log events these are
// plain atomic counters, cheap enough to stay on even when tracing is
// disabled — the selection-overhead benchmark reads them to verify the
// O(affected-set) claim.
type SelCounters struct {
	// Resolutions counts resolution events applied by the propagation
	// engine (one per process whose fate was decided).
	Resolutions atomic.Int64
	// SubscribersVisited counts worlds visited across all resolutions:
	// SubscribersVisited/Resolutions is the mean affected-set size.
	SubscribersVisited atomic.Int64
	// Eliminations counts worlds eliminated by cascades.
	Eliminations atomic.Int64
	// ShardContention counts registry lock acquisitions that found the
	// shard already held and had to block.
	ShardContention atomic.Int64
	// AliasFastPath counts sends whose destination had no alias entry
	// and skipped the alias walk entirely.
	AliasFastPath atomic.Int64
	// AliasWalks counts sends that expanded a split-receiver alias
	// chain.
	AliasWalks atomic.Int64
}

// SelSnapshot is a point-in-time copy of SelCounters.
type SelSnapshot struct {
	Resolutions        int64
	SubscribersVisited int64
	Eliminations       int64
	ShardContention    int64
	AliasFastPath      int64
	AliasWalks         int64
}

// Snapshot reads all counters. Nil-safe: a nil receiver reads as zero,
// matching the nil-*Log convention.
func (c *SelCounters) Snapshot() SelSnapshot {
	if c == nil {
		return SelSnapshot{}
	}
	return SelSnapshot{
		Resolutions:        c.Resolutions.Load(),
		SubscribersVisited: c.SubscribersVisited.Load(),
		Eliminations:       c.Eliminations.Load(),
		ShardContention:    c.ShardContention.Load(),
		AliasFastPath:      c.AliasFastPath.Load(),
		AliasWalks:         c.AliasWalks.Load(),
	}
}

// PoolCounters counts the admission-control work of a service pool
// (internal/serve): jobs through the admission gate, speculation-budget
// token traffic, and the machine-wide population of live speculative
// worlds. Like SelCounters they are plain atomics, cheap enough to stay
// on always; a daemon's /metrics endpoint snapshots them.
type PoolCounters struct {
	// JobsSubmitted counts jobs accepted into the queue.
	JobsSubmitted atomic.Int64
	// JobsRejected counts jobs refused at admission (queue full or
	// pool draining).
	JobsRejected atomic.Int64
	// JobsCompleted counts jobs whose block committed an alternative.
	JobsCompleted atomic.Int64
	// JobsFailed counts jobs whose every alternative failed (or whose
	// setup errored).
	JobsFailed atomic.Int64
	// JobsTimedOut counts jobs killed by their deadline.
	JobsTimedOut atomic.Int64
	// JobsCancelled counts jobs abandoned by the caller.
	JobsCancelled atomic.Int64
	// Waves counts alternative waves spawned (≥1 per executed job).
	Waves atomic.Int64
	// LazyWaves counts waves after the first — alternatives spawned
	// lazily because the admitted wave failed.
	LazyWaves atomic.Int64
	// AltsUnspawned counts alternatives never spawned because an
	// earlier wave committed first — the work the §4.2 overhead model
	// says speculation throttling saves.
	AltsUnspawned atomic.Int64
	// TokenWaits counts budget acquisitions that had to block for a
	// token (the admission gate actually throttling).
	TokenWaits atomic.Int64
	// SpecLive is the gauge of currently-live speculative worlds as
	// seen by the pool's world observer.
	SpecLive atomic.Int64
	// SpecHighWater is the maximum SpecLive ever observed — the number
	// the speculation budget must bound.
	SpecHighWater atomic.Int64
}

// PoolSnapshot is a point-in-time copy of PoolCounters.
type PoolSnapshot struct {
	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsRejected  int64 `json:"jobs_rejected"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsTimedOut  int64 `json:"jobs_timed_out"`
	JobsCancelled int64 `json:"jobs_cancelled"`
	Waves         int64 `json:"waves"`
	LazyWaves     int64 `json:"lazy_waves"`
	AltsUnspawned int64 `json:"alts_unspawned"`
	TokenWaits    int64 `json:"token_waits"`
	SpecLive      int64 `json:"spec_live"`
	SpecHighWater int64 `json:"spec_high_water"`
}

// Snapshot reads all counters. Nil-safe, matching SelCounters.
func (c *PoolCounters) Snapshot() PoolSnapshot {
	if c == nil {
		return PoolSnapshot{}
	}
	return PoolSnapshot{
		JobsSubmitted: c.JobsSubmitted.Load(),
		JobsRejected:  c.JobsRejected.Load(),
		JobsCompleted: c.JobsCompleted.Load(),
		JobsFailed:    c.JobsFailed.Load(),
		JobsTimedOut:  c.JobsTimedOut.Load(),
		JobsCancelled: c.JobsCancelled.Load(),
		Waves:         c.Waves.Load(),
		LazyWaves:     c.LazyWaves.Load(),
		AltsUnspawned: c.AltsUnspawned.Load(),
		TokenWaits:    c.TokenWaits.Load(),
		SpecLive:      c.SpecLive.Load(),
		SpecHighWater: c.SpecHighWater.Load(),
	}
}

// SpecEnter bumps the live-speculative-worlds gauge and raises the
// high-water mark.
func (c *PoolCounters) SpecEnter() {
	v := c.SpecLive.Add(1)
	for {
		hw := c.SpecHighWater.Load()
		if v <= hw || c.SpecHighWater.CompareAndSwap(hw, v) {
			return
		}
	}
}

// SpecExit drops the live-speculative-worlds gauge.
func (c *PoolCounters) SpecExit() { c.SpecLive.Add(-1) }

// Dump renders the whole log, one event per line.
func (l *Log) Dump() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
