// Package trace records structured runtime events. The experiment
// harness uses it to count overhead contributors (spawns, page copies,
// eliminations, message-layer decisions) that the paper's §4 analysis
// decomposes into setup, runtime, and selection overhead.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"altrun/internal/ids"
)

// Kind classifies an event.
type Kind int

// Event kinds, covering the lifecycle the paper describes in §3.
const (
	KindSpawn Kind = iota + 1
	KindGuardPass
	KindGuardFail
	KindCommit
	KindTooLate
	KindEliminate
	KindBlockFail
	KindTimeout
	KindPageCopy
	KindPageFault
	KindCompaction
	KindMsgSend
	KindMsgAccept
	KindMsgIgnore
	KindMsgSplit
	KindWorldSplit
	KindContradiction
	KindSourceBlocked
	KindSourceOp
	KindCheckpoint
	KindRestore
	KindVote
)

var kindNames = map[Kind]string{
	KindSpawn:         "spawn",
	KindGuardPass:     "guard-pass",
	KindGuardFail:     "guard-fail",
	KindCommit:        "commit",
	KindTooLate:       "too-late",
	KindEliminate:     "eliminate",
	KindBlockFail:     "block-fail",
	KindTimeout:       "timeout",
	KindPageCopy:      "page-copy",
	KindPageFault:     "page-fault",
	KindCompaction:    "compaction",
	KindMsgSend:       "msg-send",
	KindMsgAccept:     "msg-accept",
	KindMsgIgnore:     "msg-ignore",
	KindMsgSplit:      "msg-split",
	KindWorldSplit:    "world-split",
	KindContradiction: "contradiction",
	KindSourceBlocked: "source-blocked",
	KindSourceOp:      "source-op",
	KindCheckpoint:    "checkpoint",
	KindRestore:       "restore",
	KindVote:          "vote",
}

// String renders the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one recorded occurrence.
type Event struct {
	Time   time.Time
	Kind   Kind
	PID    ids.PID
	Detail string
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("%s %s %v %s", e.Time.Format("15:04:05.000000"), e.Kind, e.PID, e.Detail)
}

// Log is an append-only event log, safe for concurrent use. A nil *Log
// is valid and discards everything, so tracing can be disabled without
// branches at call sites.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Add appends an event. No-op on a nil log.
func (l *Log) Add(t time.Time, kind Kind, pid ids.PID, detail string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Time: t, Kind: kind, PID: pid, Detail: detail})
}

// Addf appends an event with a formatted detail string.
func (l *Log) Addf(t time.Time, kind Kind, pid ids.PID, format string, args ...any) {
	if l == nil {
		return
	}
	l.Add(t, kind, pid, fmt.Sprintf(format, args...))
}

// Events returns a copy of the recorded events.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Count returns how many events of the given kind were recorded.
func (l *Log) Count(kind Kind) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Len returns the total number of events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Reset discards all events.
func (l *Log) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = nil
}

// SelCounters counts selection-path work: predicate resolutions, the
// worlds each resolution actually touched (the affected set), and
// contention on the sharded world registry. Unlike Log events these are
// plain atomic counters, cheap enough to stay on even when tracing is
// disabled — the selection-overhead benchmark reads them to verify the
// O(affected-set) claim.
type SelCounters struct {
	// Resolutions counts resolution events applied by the propagation
	// engine (one per process whose fate was decided).
	Resolutions atomic.Int64
	// SubscribersVisited counts worlds visited across all resolutions:
	// SubscribersVisited/Resolutions is the mean affected-set size.
	SubscribersVisited atomic.Int64
	// Eliminations counts worlds eliminated by cascades.
	Eliminations atomic.Int64
	// ShardContention counts registry lock acquisitions that found the
	// shard already held and had to block.
	ShardContention atomic.Int64
	// AliasFastPath counts sends whose destination had no alias entry
	// and skipped the alias walk entirely.
	AliasFastPath atomic.Int64
	// AliasWalks counts sends that expanded a split-receiver alias
	// chain.
	AliasWalks atomic.Int64
}

// SelSnapshot is a point-in-time copy of SelCounters.
type SelSnapshot struct {
	Resolutions        int64
	SubscribersVisited int64
	Eliminations       int64
	ShardContention    int64
	AliasFastPath      int64
	AliasWalks         int64
}

// Snapshot reads all counters. Nil-safe: a nil receiver reads as zero,
// matching the nil-*Log convention.
func (c *SelCounters) Snapshot() SelSnapshot {
	if c == nil {
		return SelSnapshot{}
	}
	return SelSnapshot{
		Resolutions:        c.Resolutions.Load(),
		SubscribersVisited: c.SubscribersVisited.Load(),
		Eliminations:       c.Eliminations.Load(),
		ShardContention:    c.ShardContention.Load(),
		AliasFastPath:      c.AliasFastPath.Load(),
		AliasWalks:         c.AliasWalks.Load(),
	}
}

// Dump renders the whole log, one event per line.
func (l *Log) Dump() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
