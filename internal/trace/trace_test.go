package trace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"altrun/internal/ids"
)

func TestAddAndCount(t *testing.T) {
	l := NewLog()
	now := time.Unix(0, 0)
	l.Add(now, KindSpawn, ids.PID(1), "child 1")
	l.Add(now, KindSpawn, ids.PID(2), "child 2")
	l.Add(now, KindCommit, ids.PID(1), "won")
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.Count(KindSpawn) != 2 || l.Count(KindCommit) != 1 || l.Count(KindTooLate) != 0 {
		t.Fatal("counts wrong")
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(time.Now(), KindSpawn, ids.PID(1), "x")
	l.Addf(time.Now(), KindSpawn, ids.PID(1), "x %d", 1)
	if l.Len() != 0 || l.Count(KindSpawn) != 0 || l.Events() != nil {
		t.Fatal("nil log must discard")
	}
	l.Reset()
}

func TestAddf(t *testing.T) {
	l := NewLog()
	l.Addf(time.Unix(5, 0), KindMsgSplit, ids.PID(7), "into %d worlds", 2)
	evs := l.Events()
	if len(evs) != 1 || evs[0].Detail != "into 2 worlds" {
		t.Fatalf("events = %v", evs)
	}
}

func TestEventsIsCopy(t *testing.T) {
	l := NewLog()
	l.Add(time.Unix(0, 0), KindSpawn, ids.PID(1), "a")
	evs := l.Events()
	evs[0].Detail = "mutated"
	if l.Events()[0].Detail != "a" {
		t.Fatal("Events must return a copy")
	}
}

func TestReset(t *testing.T) {
	l := NewLog()
	l.Add(time.Unix(0, 0), KindSpawn, ids.PID(1), "a")
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("Reset must clear")
	}
}

func TestDumpAndStrings(t *testing.T) {
	l := NewLog()
	l.Add(time.Unix(0, 0).UTC(), KindEliminate, ids.PID(3), "sibling of winner")
	d := l.Dump()
	if !strings.Contains(d, "eliminate") || !strings.Contains(d, "p3") {
		t.Fatalf("Dump = %q", d)
	}
	if Kind(999).String() == "" {
		t.Fatal("unknown kind must render")
	}
	for k := KindSpawn; k <= KindVote; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Fatalf("kind %d has no name", int(k))
		}
	}
}

func TestConcurrentAdd(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Add(time.Now(), KindMsgSend, ids.PID(1), "m")
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("Len = %d, want 800", l.Len())
	}
}

func TestSelCountersSnapshot(t *testing.T) {
	var c SelCounters
	c.Resolutions.Add(3)
	c.SubscribersVisited.Add(7)
	c.Eliminations.Add(2)
	c.ShardContention.Add(1)
	c.AliasFastPath.Add(5)
	c.AliasWalks.Add(4)
	s := c.Snapshot()
	if s.Resolutions != 3 || s.SubscribersVisited != 7 || s.Eliminations != 2 ||
		s.ShardContention != 1 || s.AliasFastPath != 5 || s.AliasWalks != 4 {
		t.Fatalf("snapshot = %+v", s)
	}
	// A snapshot is a copy: later increments don't retroactively change it.
	c.Resolutions.Add(10)
	if s.Resolutions != 3 {
		t.Fatal("snapshot aliased the live counters")
	}
}

func TestSelCountersNilSnapshot(t *testing.T) {
	var c *SelCounters
	if s := c.Snapshot(); s != (SelSnapshot{}) {
		t.Fatalf("nil snapshot = %+v, want zero", s)
	}
}

func TestCappedLogWrapsAndCountsDrops(t *testing.T) {
	l := NewLogCapped(4)
	if l.Cap() != 4 {
		t.Fatalf("Cap = %d", l.Cap())
	}
	now := time.Unix(0, 0)
	for i := 1; i <= 6; i++ {
		l.Addf(now, KindSpawn, ids.PID(i), "event %d", i)
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (ring full)", l.Len())
	}
	if l.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", l.Dropped())
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d", len(evs))
	}
	// Oldest-first: events 3..6 survive, 1 and 2 were overwritten.
	for i, ev := range evs {
		if want := ids.PID(i + 3); ev.PID != want {
			t.Fatalf("Events[%d].PID = %v, want %v", i, ev.PID, want)
		}
	}
	// Count only sees retained events.
	if l.Count(KindSpawn) != 4 {
		t.Fatalf("Count = %d, want 4", l.Count(KindSpawn))
	}
}

func TestCappedLogBelowCapBehavesLikeUnbounded(t *testing.T) {
	l := NewLogCapped(8)
	now := time.Unix(0, 0)
	for i := 1; i <= 3; i++ {
		l.Addf(now, KindCommit, ids.PID(i), "event %d", i)
	}
	if l.Len() != 3 || l.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d", l.Len(), l.Dropped())
	}
	evs := l.Events()
	for i, ev := range evs {
		if want := ids.PID(i + 1); ev.PID != want {
			t.Fatalf("Events[%d].PID = %v, want %v", i, ev.PID, want)
		}
	}
}

func TestCappedLogReset(t *testing.T) {
	l := NewLogCapped(2)
	now := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		l.Add(now, KindSpawn, ids.PID(1), "x")
	}
	l.Reset()
	if l.Len() != 0 || l.Dropped() != 0 {
		t.Fatalf("after Reset: Len=%d Dropped=%d", l.Len(), l.Dropped())
	}
	if l.Cap() != 2 {
		t.Fatalf("Reset lost the cap: %d", l.Cap())
	}
	l.Add(now, KindSpawn, ids.PID(7), "y")
	if l.Len() != 1 || l.Events()[0].PID != ids.PID(7) {
		t.Fatal("ring unusable after Reset")
	}
}

func TestUnboundedLogHasNoCap(t *testing.T) {
	l := NewLog()
	if l.Cap() != 0 {
		t.Fatalf("NewLog Cap = %d, want 0 (unbounded)", l.Cap())
	}
	now := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		l.Add(now, KindSpawn, ids.PID(1), "x")
	}
	if l.Len() != 1000 || l.Dropped() != 0 {
		t.Fatalf("unbounded log dropped events: Len=%d Dropped=%d", l.Len(), l.Dropped())
	}
}

func TestPoolCountersSnapshot(t *testing.T) {
	var c PoolCounters
	c.JobsSubmitted.Add(3)
	c.SpecEnter()
	c.SpecEnter()
	c.SpecExit()
	c.SpecEnter()
	s := c.Snapshot()
	if s.JobsSubmitted != 3 {
		t.Fatalf("JobsSubmitted = %d", s.JobsSubmitted)
	}
	if s.SpecLive != 2 {
		t.Fatalf("SpecLive = %d, want 2", s.SpecLive)
	}
	if s.SpecHighWater != 2 {
		t.Fatalf("SpecHighWater = %d, want 2", s.SpecHighWater)
	}
	var nilC *PoolCounters
	if snap := nilC.Snapshot(); snap != (PoolSnapshot{}) {
		t.Fatal("nil PoolCounters snapshot not zero")
	}
}

func TestPoolCountersHighWaterConcurrent(t *testing.T) {
	var c PoolCounters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.SpecEnter()
				c.SpecExit()
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.SpecLive != 0 {
		t.Fatalf("SpecLive = %d, want 0", s.SpecLive)
	}
	if s.SpecHighWater < 1 || s.SpecHighWater > 8 {
		t.Fatalf("SpecHighWater = %d, want 1..8", s.SpecHighWater)
	}
}
