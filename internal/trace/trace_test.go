package trace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"altrun/internal/ids"
)

func TestAddAndCount(t *testing.T) {
	l := NewLog()
	now := time.Unix(0, 0)
	l.Add(now, KindSpawn, ids.PID(1), "child 1")
	l.Add(now, KindSpawn, ids.PID(2), "child 2")
	l.Add(now, KindCommit, ids.PID(1), "won")
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.Count(KindSpawn) != 2 || l.Count(KindCommit) != 1 || l.Count(KindTooLate) != 0 {
		t.Fatal("counts wrong")
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(time.Now(), KindSpawn, ids.PID(1), "x")
	l.Addf(time.Now(), KindSpawn, ids.PID(1), "x %d", 1)
	if l.Len() != 0 || l.Count(KindSpawn) != 0 || l.Events() != nil {
		t.Fatal("nil log must discard")
	}
	l.Reset()
}

func TestAddf(t *testing.T) {
	l := NewLog()
	l.Addf(time.Unix(5, 0), KindMsgSplit, ids.PID(7), "into %d worlds", 2)
	evs := l.Events()
	if len(evs) != 1 || evs[0].Detail != "into 2 worlds" {
		t.Fatalf("events = %v", evs)
	}
}

func TestEventsIsCopy(t *testing.T) {
	l := NewLog()
	l.Add(time.Unix(0, 0), KindSpawn, ids.PID(1), "a")
	evs := l.Events()
	evs[0].Detail = "mutated"
	if l.Events()[0].Detail != "a" {
		t.Fatal("Events must return a copy")
	}
}

func TestReset(t *testing.T) {
	l := NewLog()
	l.Add(time.Unix(0, 0), KindSpawn, ids.PID(1), "a")
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("Reset must clear")
	}
}

func TestDumpAndStrings(t *testing.T) {
	l := NewLog()
	l.Add(time.Unix(0, 0).UTC(), KindEliminate, ids.PID(3), "sibling of winner")
	d := l.Dump()
	if !strings.Contains(d, "eliminate") || !strings.Contains(d, "p3") {
		t.Fatalf("Dump = %q", d)
	}
	if Kind(999).String() == "" {
		t.Fatal("unknown kind must render")
	}
	for k := KindSpawn; k <= KindVote; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Fatalf("kind %d has no name", int(k))
		}
	}
}

func TestConcurrentAdd(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Add(time.Now(), KindMsgSend, ids.PID(1), "m")
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("Len = %d, want 800", l.Len())
	}
}

func TestSelCountersSnapshot(t *testing.T) {
	var c SelCounters
	c.Resolutions.Add(3)
	c.SubscribersVisited.Add(7)
	c.Eliminations.Add(2)
	c.ShardContention.Add(1)
	c.AliasFastPath.Add(5)
	c.AliasWalks.Add(4)
	s := c.Snapshot()
	if s.Resolutions != 3 || s.SubscribersVisited != 7 || s.Eliminations != 2 ||
		s.ShardContention != 1 || s.AliasFastPath != 5 || s.AliasWalks != 4 {
		t.Fatalf("snapshot = %+v", s)
	}
	// A snapshot is a copy: later increments don't retroactively change it.
	c.Resolutions.Add(10)
	if s.Resolutions != 3 {
		t.Fatal("snapshot aliased the live counters")
	}
}

func TestSelCountersNilSnapshot(t *testing.T) {
	var c *SelCounters
	if s := c.Snapshot(); s != (SelSnapshot{}) {
		t.Fatalf("nil snapshot = %+v, want zero", s)
	}
}
