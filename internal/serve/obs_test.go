package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"altrun/internal/core"
	"altrun/internal/obs"
	"altrun/internal/trace"
)

// TestRecorderObservesJobs runs real jobs through a pool with a
// rate-1 flight recorder and checks the recorded timelines: phase
// decomposition reconciles with block wall time, counts match the
// block shape, and — once the EWMA history has seen a winner — the
// second submission of the same kind carries a predicted PI.
func TestRecorderObservesJobs(t *testing.T) {
	rec := obs.NewRecorder(obs.Config{SampleRate: 1})
	p := newTestPool(t, Config{Workers: 2, SpecTokens: 8, Recorder: rec})
	if p.Recorder() != rec {
		t.Fatal("pool does not expose its recorder")
	}

	job := Job{
		Kind: "obs-test",
		Name: "blk",
		Alts: []core.Alt{
			{Name: "winner", Body: func(w *core.World) error {
				time.Sleep(5 * time.Millisecond)
				return w.WriteUint64(0, 42)
			}},
			{Name: "loser", Body: func(w *core.World) error {
				return core.ErrGuardFailed
			}},
		},
		TraceID: "trace-abc",
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	tk, err := p.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait(ctx)
	if err != nil || res.Status != StatusDone {
		t.Fatalf("job 1: res=%+v err=%v", res, err)
	}

	tl, ok := rec.Timeline(tk.ID())
	if !ok {
		t.Fatalf("no timeline recorded for job %d", tk.ID())
	}
	if tl.Status != "done" || tl.Winner != "winner" {
		t.Fatalf("timeline outcome = %q/%q", tl.Status, tl.Winner)
	}
	if tl.TraceID != "trace-abc" {
		t.Fatalf("trace id = %q", tl.TraceID)
	}
	if sum := tl.Setup + tl.Runtime + tl.Selection + tl.Sched; sum != tl.Wall {
		t.Fatalf("phases %v+%v+%v+%v = %v, wall %v",
			tl.Setup, tl.Runtime, tl.Selection, tl.Sched, sum, tl.Wall)
	}
	if tl.Spawns != 2 || tl.Waves != 1 {
		t.Fatalf("spawns=%d waves=%d, want 2/1", tl.Spawns, tl.Waves)
	}
	if tl.Runtime < 4*time.Millisecond {
		t.Fatalf("runtime %v does not cover the winner's 5ms body", tl.Runtime)
	}
	// First block of a fresh kind: no history, so no prediction.
	if tl.PIPredicted != 0 || tl.PredictedMean != 0 {
		t.Fatalf("first block has prediction: %+v", tl)
	}

	// Second job of the same kind: the first winner seeded the EWMA,
	// so the recorder should now carry predicted taus and a PI.
	tk2, err := p.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := tk2.Wait(ctx); err != nil || res.Status != StatusDone {
		t.Fatalf("job 2: res=%+v err=%v", res, err)
	}
	tl2, ok := rec.Timeline(tk2.ID())
	if !ok {
		t.Fatal("no timeline for job 2")
	}
	if tl2.PredictedMean <= 0 || tl2.PredictedBest <= 0 {
		t.Fatalf("job 2 missing predicted taus: %+v", tl2)
	}
	if tl2.PIMeasured <= 0 || tl2.PIPredicted <= 0 {
		t.Fatalf("job 2 missing PI: meas=%v pred=%v", tl2.PIMeasured, tl2.PIPredicted)
	}
	if s := rec.Stats(); s.BlocksStarted != 2 || s.BlocksSampled != 2 {
		t.Fatalf("recorder stats: %+v", s)
	}
}

// TestCountersConcurrentUnderLoad drives a 64-way servebench-style
// workload while reader goroutines continuously snapshot every counter
// surface — pool stats (PoolCounters), runtime selection stats
// (SelCounters), transport counters (NetCounters), and the flight
// recorder — so the CI -race run proves the hot mutation paths and the
// /metrics read paths never race.
func TestCountersConcurrentUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	rec := obs.NewRecorder(obs.Config{SampleRate: 4})
	p := newTestPool(t, Config{Workers: 8, SpecTokens: 16, QueueDepth: 128, Recorder: rec})
	nc := &trace.NetCounters{}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var sink strings.Builder
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = p.Stats()
				_ = p.Runtime().SelStats()
				_ = p.Runtime().MsgStats()
				_ = nc.Snapshot()
				_ = rec.Stats()
				_ = rec.Recent()
				sink.Reset()
				rec.WritePrometheus(&sink)
			}
		}()
	}
	// One writer hammers the transport counters like a live claim loop.
	readers.Add(1)
	go func() {
		defer readers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r0 := nc.RetryCount()
			if i%17 == 0 {
				nc.Retries.Add(1)
			}
			nc.ObserveRTTIfStable(time.Duration(i)*time.Microsecond, r0)
			nc.MsgsSent.Add(1)
		}
	}()

	const jobs = 64
	var wg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(seq int) {
			defer wg.Done()
			job := Job{
				Kind: "race-load",
				Name: "blk",
				Alts: []core.Alt{
					{Name: "fast", Body: func(w *core.World) error {
						return w.WriteUint64(0, uint64(seq))
					}},
					{Name: "slow", Body: func(w *core.World) error {
						time.Sleep(time.Millisecond)
						return w.WriteUint64(0, uint64(seq))
					}},
				},
			}
			tk, err := p.Submit(job)
			if err != nil {
				t.Errorf("submit %d: %v", seq, err)
				return
			}
			if res, err := tk.Wait(ctx); err != nil || res.Status != StatusDone {
				t.Errorf("job %d: %+v %v", seq, res, err)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if s := rec.Stats(); s.BlocksStarted != jobs {
		t.Fatalf("recorder saw %d blocks, want %d", s.BlocksStarted, jobs)
	}
}

// TestRecorderFailedJob: a job whose alternatives all fail must still
// retire its timeline with the failed status.
func TestRecorderFailedJob(t *testing.T) {
	rec := obs.NewRecorder(obs.Config{SampleRate: 1})
	p := newTestPool(t, Config{Workers: 1, SpecTokens: 4, Recorder: rec})
	tk, err := p.Submit(Job{Kind: "obs-fail", Name: "doomed", Alts: []core.Alt{
		{Name: "a", Body: func(w *core.World) error { return errors.New("nope") }},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if res, _ := tk.Wait(ctx); res.Status != StatusFailed {
		t.Fatalf("status = %v", res.Status)
	}
	tl, ok := rec.Timeline(tk.ID())
	if !ok {
		t.Fatal("no timeline for failed job")
	}
	if tl.Status != "failed" || tl.Winner != "" {
		t.Fatalf("failed timeline = %q/%q", tl.Status, tl.Winner)
	}
}
