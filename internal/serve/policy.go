// Adaptive speculation controller: the paper's PI model turned into a
// live, per-job scheduler.
//
// The paper's performance case is PI = τ(C_mean) / (τ(C_best) +
// τ(overhead)): speculation only pays when racing the alternatives
// beats running one and falling through. The static pool speculates at
// a fixed degree for every job; this controller closes the feedback
// loop using what the serve layer already measures — the History EWMAs
// (per-alternative τ, win and failure rates, the kind's realized
// winner-τ) and the flight recorder's live overhead decomposition — to
// decide, per job:
//
//  1. whether to speculate at all. The controller estimates the
//     expected latency of the sequential-alternatives baseline (run the
//     ranked-first alternative, fall through on failure, paying one
//     block overhead per extra wave) against the expected latency of
//     the speculative block (realized winner-τ plus overhead). Their
//     ratio is a generalized predicted PI; below the threshold the job
//     runs one alternative per wave, which is exactly the paper's
//     sequential baseline with fall-through;
//  2. the speculation degree N: alternatives join the wave while their
//     marginal predicted latency gain — fall-through probability mass
//     times their cost, plus an uncertain-winner term weighted by
//     historical win share — exceeds the marginal overhead another
//     speculative world costs;
//  3. the spawn order: a UCB bandit over win rate and winner latency
//     (History.OrderUCB), so a regressed favourite loses its slot and a
//     rarely-tried alternative occasionally gets one;
//  4. the global speculation token budget: grown when waves block on
//     tokens at full capacity, shrunk toward the observed high-water
//     when the pool stops filling it.
//
// Every ExploreEvery-th decision per kind is an explore tick: the job
// speculates at full degree whatever the PI says, refreshing the
// statistics a sequential steady state would otherwise starve.
package serve

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// AdaptConfig tunes the adaptive speculation controller.
type AdaptConfig struct {
	// Enabled turns the controller on; zero-value keeps the static
	// policy (fixed degree, pure-EWMA ordering).
	Enabled bool
	// PIThreshold is the predicted-PI floor for speculating (default 1:
	// speculate only when it is predicted to beat sequential).
	PIThreshold float64
	// UCBExploration is the bandit's exploration constant c (default
	// 0.5; 0 = pure exploitation).
	UCBExploration float64
	// MinKindWins is how many committed blocks a kind needs before the
	// controller trusts its statistics enough to force sequential
	// execution (default 5; cold kinds always speculate).
	MinKindWins int64
	// WinShareFloor is the historical win share at which an alternative
	// counts as a genuine contender in the degree rule (default 0.1).
	WinShareFloor float64
	// OverheadPrior seeds the per-block overhead estimate until the
	// flight recorder has summarized real blocks (default 150µs).
	OverheadPrior time.Duration
	// ExploreEvery forces every Nth decision per kind to speculate at
	// full degree (default 64; 0 disables explore ticks).
	ExploreEvery int
	// ResizeInterval is how often the token budget is reconsidered
	// (default 2s; 0 disables resizing).
	ResizeInterval time.Duration
	// MinTokens / MaxTokens bound budget resizing (defaults: half and
	// 4× the pool's SpecTokens).
	MinTokens int
	MaxTokens int
}

func (c AdaptConfig) withDefaults(specTokens int) AdaptConfig {
	if c.PIThreshold <= 0 {
		c.PIThreshold = 1
	}
	if c.UCBExploration < 0 {
		c.UCBExploration = 0
	} else if c.UCBExploration == 0 {
		c.UCBExploration = 0.5
	}
	if c.MinKindWins <= 0 {
		c.MinKindWins = 5
	}
	if c.WinShareFloor <= 0 {
		c.WinShareFloor = 0.1
	}
	if c.OverheadPrior <= 0 {
		c.OverheadPrior = 150 * time.Microsecond
	}
	if c.ExploreEvery < 0 {
		c.ExploreEvery = 0
	} else if c.ExploreEvery == 0 {
		c.ExploreEvery = 64
	}
	if c.ResizeInterval == 0 {
		c.ResizeInterval = 2 * time.Second
	}
	if c.MinTokens <= 0 {
		c.MinTokens = max(1, specTokens/2)
	}
	if c.MaxTokens <= 0 {
		c.MaxTokens = 4 * specTokens
	}
	if c.MaxTokens < specTokens {
		c.MaxTokens = specTokens
	}
	if c.MinTokens > c.MaxTokens {
		c.MinTokens = c.MaxTokens
	}
	return c
}

// decisionKind labels what the controller chose for a job.
type decisionKind uint8

const (
	decideStatic decisionKind = iota // controller disabled
	decideSequential
	decideSpeculate
	decideExplore
)

var decisionNames = [...]string{
	decideStatic:     "static",
	decideSequential: "sequential",
	decideSpeculate:  "speculate",
	decideExplore:    "explore",
}

func (d decisionKind) String() string { return decisionNames[d] }

// Decision is the controller's verdict for one job.
type Decision struct {
	Kind decisionKind
	// Degree is the wave width: 1 for sequential fall-through, up to
	// the job's cap otherwise.
	Degree int
	// Order is the spawn order (indices into the job's alternatives):
	// UCB-ranked for speculative waves, pure-EWMA for sequential.
	Order []int
	// PredPI is the generalized predicted PI: expected sequential
	// latency over expected speculative latency (0 without history).
	PredPI float64
	// PredMean, PredBest, PredOverhead are the τ(C_mean), τ(C_best) and
	// τ(overhead) estimates behind it, for the flight recorder.
	PredMean, PredBest, PredOverhead time.Duration
}

// Controller is the adaptive speculation policy engine. All knobs are
// atomically settable so an operator (or the -race stress test) can
// flip them concurrently with a live job stream.
type Controller struct {
	hist *History

	enabled     atomic.Bool
	piThreshold atomicFloat
	ucbC        atomicFloat
	winShare    atomicFloat
	ovhPrior    atomic.Int64 // ns
	minWins     atomic.Int64
	exploreN    atomic.Int64

	seqDecisions     atomic.Int64
	specDecisions    atomic.Int64
	exploreDecisions atomic.Int64
	degreeSum        atomic.Int64
	decisions        atomic.Int64

	// Budget resize state.
	resizeEvery time.Duration
	minTokens   int
	maxTokens   int
	grows       atomic.Int64
	shrinks     atomic.Int64
	resizeMu    sync.Mutex
	lastResize  time.Time
	lastWaits   int64
}

// NewController builds a controller over the pool's history.
func NewController(cfg AdaptConfig, hist *History) *Controller {
	c := &Controller{
		hist:        hist,
		resizeEvery: cfg.ResizeInterval,
		minTokens:   cfg.MinTokens,
		maxTokens:   cfg.MaxTokens,
		lastResize:  time.Now(),
	}
	c.enabled.Store(cfg.Enabled)
	c.piThreshold.Store(cfg.PIThreshold)
	c.ucbC.Store(cfg.UCBExploration)
	c.winShare.Store(cfg.WinShareFloor)
	c.ovhPrior.Store(int64(cfg.OverheadPrior))
	c.minWins.Store(cfg.MinKindWins)
	c.exploreN.Store(int64(cfg.ExploreEvery))
	return c
}

// Enabled reports whether the controller is making decisions.
func (c *Controller) Enabled() bool { return c != nil && c.enabled.Load() }

// SetEnabled flips the controller on or off at runtime.
func (c *Controller) SetEnabled(on bool) { c.enabled.Store(on) }

// SetPIThreshold adjusts the speculate/sequential PI floor at runtime.
func (c *Controller) SetPIThreshold(v float64) {
	if v > 0 {
		c.piThreshold.Store(v)
	}
}

// SetUCBExploration adjusts the bandit exploration constant at runtime.
func (c *Controller) SetUCBExploration(v float64) {
	if v >= 0 {
		c.ucbC.Store(v)
	}
}

// SetExploreEvery adjusts the explore-tick period at runtime (0 off).
func (c *Controller) SetExploreEvery(n int) {
	if n >= 0 {
		c.exploreN.Store(int64(n))
	}
}

// Decide picks the execution plan for one job: whether to speculate,
// how wide, and in what order. maxDegree is the job's effective degree
// cap (≥1).
func (c *Controller) Decide(kind string, names []string, maxDegree int) Decision {
	if maxDegree < 1 {
		maxDegree = 1
	}
	ovh := float64(c.ovhPrior.Load())
	mean, best, measuredOvh, ok := c.hist.Predict(kind, names)
	if measuredOvh > 0 {
		ovh = float64(measuredOvh)
	}
	d := Decision{
		PredMean:     mean,
		PredBest:     best,
		PredOverhead: time.Duration(ovh),
	}

	// Explore tick: every Nth decision per kind speculates at full
	// degree whatever the statistics say, so a sequential steady state
	// keeps refreshing the data it is built on.
	exploreEvery := c.exploreN.Load()
	explore := exploreEvery > 0 && c.hist.decisionOrdinal(kind)%uint64(exploreEvery) == 0

	if !ok || c.hist.winsOf(kind) < c.minWins.Load() || explore {
		// Cold start (or explore): not enough history to justify
		// suppressing speculation — run wide and learn.
		order, _ := c.hist.OrderUCB(kind, names, c.ucbC.Load())
		d.Order = order
		d.Degree = maxDegree
		d.Kind = decideSpeculate
		if explore {
			d.Kind = decideExplore
		}
		c.note(kind, d.Kind, d.Degree)
		return d
	}

	order, views := c.hist.OrderUCB(kind, names, c.ucbC.Load())

	// Expected latency of the sequential-alternatives baseline: run the
	// ranked-first alternative; on failure fall through to the next,
	// paying one block overhead per extra wave.
	seq := views[order[0]].tau
	failMass := views[order[0]].failRate
	for k := 1; k < len(order); k++ {
		seq += failMass * (views[order[k]].tau + ovh)
		failMass *= views[order[k]].failRate
	}
	// Expected latency of the speculative block: the realized winner τ
	// plus the measured per-block overhead.
	spec := float64(best) + ovh
	if spec > 0 {
		d.PredPI = seq / spec
	}

	// Abandoning speculation is the riskier move (it commits the job to
	// the prediction), so it takes a deliberate signal: the predicted
	// saving must be worth at least half a block overhead — the scale
	// the two estimates actually differ by — and must persist across
	// consecutive decisions, so one EWMA noise dip cannot flap a
	// healthy speculative kind into sequential fall-through.
	wantSeq := d.PredPI < c.piThreshold.Load() && spec-seq > 0.5*ovh
	if c.hist.noteSeqSignal(kind, wantSeq) >= 2 {
		// Speculation predicted not to pay: the paper's sequential
		// baseline. Order by pure exploitation — with one alternative
		// per wave there is no race to hide exploration in.
		d.Order = c.hist.Order(kind, names)
		d.Degree = 1
		d.Kind = decideSequential
		c.note(kind, d.Kind, 1)
		return d
	}

	// Degree: admit ranked alternatives while the marginal predicted
	// gain (fall-through mass it absorbs, plus its claim on genuinely
	// uncertain wins) exceeds the marginal overhead of another
	// speculative world.
	shareFloor := c.winShare.Load()
	degree := 1
	failMass = views[order[0]].failRate
	tauBest := views[order[0]].tau
	for k := 1; k < len(order) && degree < maxDegree; k++ {
		v := views[order[k]]
		gain := failMass * (v.tau + ovh)
		if v.winShare >= shareFloor {
			gain += v.winShare * tauBest
		}
		if gain <= ovh {
			break
		}
		degree++
		failMass *= v.failRate
	}
	d.Order = order
	d.Degree = degree
	d.Kind = decideSpeculate
	c.note(kind, d.Kind, degree)
	return d
}

// note records a decision in the global and per-kind counters.
func (c *Controller) note(kind string, d decisionKind, degree int) {
	c.decisions.Add(1)
	c.degreeSum.Add(int64(degree))
	switch d {
	case decideSequential:
		c.seqDecisions.Add(1)
	case decideSpeculate:
		c.specDecisions.Add(1)
	case decideExplore:
		c.exploreDecisions.Add(1)
	}
	c.hist.noteDecision(kind, d)
}

// MaybeResize reconsiders the speculation token budget: grown when
// waves block on tokens with the pool at capacity (throttling real
// demand), shrunk toward the observed high-water when the window never
// filled it. Cheap when called often — it no-ops until ResizeInterval
// has elapsed.
func (c *Controller) MaybeResize(b *Budget, now time.Time) {
	if c.resizeEvery <= 0 || !c.enabled.Load() {
		return
	}
	c.resizeMu.Lock()
	defer c.resizeMu.Unlock()
	if now.Sub(c.lastResize) < c.resizeEvery {
		return
	}
	c.lastResize = now
	waits := b.Waits()
	dWaits := waits - c.lastWaits
	c.lastWaits = waits
	capacity := b.Capacity()
	hw := b.TakeWindowHighWater()
	switch {
	case dWaits > 0 && hw >= capacity && capacity < c.maxTokens:
		// Saturated and blocking: admit more speculation.
		grown := min(c.maxTokens, capacity+max(1, capacity/4))
		b.Resize(grown)
		c.grows.Add(1)
	case dWaits == 0 && hw < capacity && capacity > c.minTokens:
		// Oversized: tighten the bound toward what was actually used,
		// one step at a time so a burst can still grow it back.
		target := max(c.minTokens, max(hw, capacity-max(1, capacity/4)))
		if target < capacity {
			b.Resize(target)
			c.shrinks.Add(1)
		}
	}
}

// PolicyStats is the controller's aggregate view for /metrics.
type PolicyStats struct {
	Enabled          bool    `json:"enabled"`
	PIThreshold      float64 `json:"pi_threshold"`
	UCBExploration   float64 `json:"ucb_exploration"`
	Decisions        int64   `json:"decisions"`
	SeqDecisions     int64   `json:"seq_decisions"`
	SpecDecisions    int64   `json:"spec_decisions"`
	ExploreDecisions int64   `json:"explore_decisions"`
	MeanDegree       float64 `json:"mean_degree"`
	BudgetGrows      int64   `json:"budget_grows"`
	BudgetShrinks    int64   `json:"budget_shrinks"`
	SpecTokens       int     `json:"spec_tokens"`
	HistoryKinds     int     `json:"history_kinds"`
	HistoryEvictions int64   `json:"history_evictions"`
	OverheadEWMAUS   float64 `json:"overhead_ewma_us"`
}

// Stats snapshots the controller against the budget it manages.
// Nil-safe: a nil controller returns a zero (disabled) view.
func (c *Controller) Stats(b *Budget) PolicyStats {
	if c == nil {
		return PolicyStats{}
	}
	s := PolicyStats{
		Enabled:          c.enabled.Load(),
		PIThreshold:      c.piThreshold.Load(),
		UCBExploration:   c.ucbC.Load(),
		Decisions:        c.decisions.Load(),
		SeqDecisions:     c.seqDecisions.Load(),
		SpecDecisions:    c.specDecisions.Load(),
		ExploreDecisions: c.exploreDecisions.Load(),
		BudgetGrows:      c.grows.Load(),
		BudgetShrinks:    c.shrinks.Load(),
		HistoryKinds:     c.hist.Kinds(),
		HistoryEvictions: c.hist.Evictions(),
	}
	if s.Decisions > 0 {
		s.MeanDegree = float64(c.degreeSum.Load()) / float64(s.Decisions)
	}
	if b != nil {
		s.SpecTokens = b.Capacity()
	}
	if ovh, ok := c.hist.Overhead(""); ok {
		s.OverheadEWMAUS = float64(ovh) / float64(time.Microsecond)
	}
	return s
}

// atomicFloat is an atomically settable float64 knob.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }
