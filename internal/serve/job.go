package serve

import (
	"context"
	"sync"
	"time"

	"altrun/internal/core"
)

// Job describes one alternative-block job: a set of mutually exclusive
// alternatives to race in a private speculative world tree, with
// optional state seeding and result extraction. apps/recovery and
// apps/prolog provide adapters that build Jobs from recovery blocks
// and Prolog queries; raw core.Alt sets work directly.
type Job struct {
	// Kind buckets the job for latency history (jobs of one kind share
	// alternative-ordering statistics). Empty is a valid bucket.
	Kind string
	// Name labels the job in results and traces.
	Name string
	// Alts are the block's alternatives. Alternative names must be
	// stable across submissions of the same Kind for priority admission
	// to learn anything; empty names default to "alt-N".
	Alts []core.Alt
	// SpaceSize is the root world's address-space size in bytes
	// (pool default if 0).
	SpaceSize int64
	// Init seeds the root world's state before the block runs.
	Init func(w *core.World) error
	// Extract reads the job's result out of the committed state.
	Extract func(w *core.World) (any, error)
	// Cleanup, when non-nil, runs once the job is finished — on every
	// terminal path, before the root world is shut down. Adapters use it
	// to tear down resources Init created outside the root world (e.g.
	// an STM store's server-world tree), which Extract alone cannot do:
	// Extract only runs on success.
	Cleanup func(w *core.World)
	// Deadline bounds the job end to end — queue wait, budget wait,
	// and every wave (pool default if 0; negative means none). An
	// expired deadline cancels the root world, which eliminates the
	// job's whole speculative subtree.
	Deadline time.Duration
	// MaxDegree caps how many alternatives race at once for this job
	// (pool default if 0).
	MaxDegree int
	// FullCopy physically copies the root's state into each child
	// (recovery-block mode, §5.1.2) instead of COW sharing.
	FullCopy bool
	// TraceID, when non-empty, tags the job's flight-recorder timeline
	// so spans recorded on different nodes for the same logical request
	// (an rfork-forwarded job) can be stitched together.
	TraceID string
}

// Status is a job's lifecycle state.
type Status int

// Job states. Terminal states are StatusDone, StatusFailed,
// StatusTimedOut, StatusCancelled.
const (
	// StatusQueued: accepted, waiting for a worker.
	StatusQueued Status = iota + 1
	// StatusRunning: a worker is executing its waves.
	StatusRunning
	// StatusDone: an alternative committed.
	StatusDone
	// StatusFailed: every alternative failed, or setup errored.
	StatusFailed
	// StatusTimedOut: the deadline expired first.
	StatusTimedOut
	// StatusCancelled: the caller abandoned the job.
	StatusCancelled
)

var statusNames = map[Status]string{
	StatusQueued:    "queued",
	StatusRunning:   "running",
	StatusDone:      "done",
	StatusFailed:    "failed",
	StatusTimedOut:  "timed-out",
	StatusCancelled: "cancelled",
}

// String renders the status.
func (s Status) String() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return "unknown"
}

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusTimedOut || s == StatusCancelled
}

// JobResult is the outcome of a terminal job.
type JobResult struct {
	// Status is the terminal state.
	Status Status
	// Value is Extract's output (nil without an Extract).
	Value any
	// Winner is the committed alternative's name ("" unless Done).
	Winner string
	// WinnerIndex is the committed alternative's index into Job.Alts
	// (-1 unless Done).
	WinnerIndex int
	// Waves is how many alternative waves were spawned.
	Waves int
	// AltsUnspawned is how many alternatives were never spawned
	// because an earlier wave committed — speculation saved.
	AltsUnspawned int
	// Elapsed is submit-to-terminal wall time.
	Elapsed time.Duration
	// Err is the failure cause (nil when Done).
	Err error
}

// task is the pool's internal job state.
type task struct {
	id  uint64
	job Job

	ctx    context.Context
	cancel context.CancelFunc
	// cancelled records an explicit Ticket.Cancel, distinguishing it
	// from a deadline expiry (both surface as ctx cancellation).
	cancelled bool

	mu     sync.Mutex
	status Status
	root   *core.World // set while running
	res    JobResult

	submitted time.Time
	done      chan struct{}
}

func (t *task) setStatus(s Status) {
	t.mu.Lock()
	t.status = s
	t.mu.Unlock()
}

// state returns the task's current status and result under its lock.
func (t *task) state() (Status, JobResult) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status, t.res
}

// finish moves the task to a terminal state exactly once.
func (t *task) finish(res JobResult) {
	t.mu.Lock()
	if t.status.Terminal() {
		t.mu.Unlock()
		return
	}
	t.status = res.Status
	t.res = res
	t.mu.Unlock()
	t.cancel()
	close(t.done)
}

// Ticket is the caller's handle on a submitted job.
type Ticket struct {
	t *task
}

// ID returns the pool-unique job ID.
func (tk *Ticket) ID() uint64 { return tk.t.id }

// Status returns the job's current state.
func (tk *Ticket) Status() Status {
	tk.t.mu.Lock()
	defer tk.t.mu.Unlock()
	return tk.t.status
}

// Cancel abandons the job: a queued job never runs; a running job's
// root world is cancelled, aborting the in-flight block and freeing its
// whole speculative subtree. Idempotent.
func (tk *Ticket) Cancel() {
	t := tk.t
	t.mu.Lock()
	t.cancelled = true
	root := t.root
	t.mu.Unlock()
	t.cancel()
	if root != nil {
		root.Cancel()
	}
}

// Wait blocks until the job is terminal (returning its result) or ctx
// ends (returning ctx.Err with a zero result). Waiting does not cancel
// the job.
func (tk *Ticket) Wait(ctx context.Context) (JobResult, error) {
	select {
	case <-tk.t.done:
	case <-ctx.Done():
		return JobResult{}, ctx.Err()
	}
	tk.t.mu.Lock()
	defer tk.t.mu.Unlock()
	return tk.t.res, nil
}

// Result returns the job's result if it is terminal.
func (tk *Ticket) Result() (JobResult, bool) {
	tk.t.mu.Lock()
	defer tk.t.mu.Unlock()
	if !tk.t.status.Terminal() {
		return JobResult{}, false
	}
	return tk.t.res, true
}
