package serve

import (
	"context"
	"sync"
)

// Budget is the global speculation budget: a token pool bounding the
// number of live speculative worlds machine-wide. One token stands for
// one spawned alternative; a wave acquires its tokens before RunAlt
// spawns and releases them after the block's siblings are eliminated,
// so the live-speculative-world gauge can never exceed the capacity.
//
// Acquisition is "at least one, greedily more": a job blocks until it
// holds one token (its historically-fastest alternative always runs —
// starving a job entirely would turn throttling into livelock) and
// then takes whatever else is free up to its degree cap, without
// blocking. Under contention jobs therefore degrade gracefully toward
// sequential execution instead of queueing for full-width waves.
type Budget struct {
	tokens chan struct{}

	mu        sync.Mutex
	capacity  int
	inUse     int
	highWater int
	waits     int64
}

// NewBudget returns a budget with the given token capacity (minimum 1).
func NewBudget(capacity int) *Budget {
	if capacity < 1 {
		capacity = 1
	}
	b := &Budget{
		tokens:   make(chan struct{}, capacity),
		capacity: capacity,
	}
	for i := 0; i < capacity; i++ {
		b.tokens <- struct{}{}
	}
	return b
}

// Acquire obtains between 1 and want tokens: it blocks for the first
// (honouring ctx) and greedily takes up to want-1 more without
// blocking. It returns the number obtained, or 0 with ctx.Err() when
// the context ended first. want < 1 is treated as 1.
func (b *Budget) Acquire(ctx context.Context, want int) (int, error) {
	if want < 1 {
		want = 1
	}
	select {
	case <-b.tokens:
	default:
		// The pool is exhausted: this acquisition actually throttles.
		b.mu.Lock()
		b.waits++
		b.mu.Unlock()
		select {
		case <-b.tokens:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	got := 1
	for got < want {
		select {
		case <-b.tokens:
			got++
		default:
			b.note(got)
			return got, nil
		}
	}
	b.note(got)
	return got, nil
}

// note records an acquisition of n tokens in the gauges.
func (b *Budget) note(n int) {
	b.mu.Lock()
	b.inUse += n
	if b.inUse > b.highWater {
		b.highWater = b.inUse
	}
	b.mu.Unlock()
}

// Release returns n tokens to the pool.
func (b *Budget) Release(n int) {
	if n <= 0 {
		return
	}
	b.mu.Lock()
	b.inUse -= n
	b.mu.Unlock()
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
}

// Capacity returns the pool size.
func (b *Budget) Capacity() int { return b.capacity }

// InUse returns the tokens currently held.
func (b *Budget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inUse
}

// HighWater returns the maximum tokens ever held at once (≤ Capacity).
func (b *Budget) HighWater() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.highWater
}

// Waits returns how many acquisitions found the pool exhausted and had
// to block — the admission gate actually throttling speculation.
func (b *Budget) Waits() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.waits
}
