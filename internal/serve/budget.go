package serve

import (
	"context"
	"sync"
)

// Budget is the global speculation budget: a token pool bounding the
// number of live speculative worlds machine-wide. One token stands for
// one spawned alternative; a wave acquires its tokens before RunAlt
// spawns and releases them after the block's siblings are eliminated,
// so the live-speculative-world gauge can never exceed the capacity.
//
// Acquisition is "at least one, greedily more": a job blocks until it
// holds one token (its historically-fastest alternative always runs —
// starving a job entirely would turn throttling into livelock) and
// then takes whatever else is free up to its degree cap, without
// blocking. Under contention jobs therefore degrade gracefully toward
// sequential execution instead of queueing for full-width waves.
//
// The capacity is resizable at runtime (the adaptive controller grows
// it when waves block on tokens at full capacity and shrinks it toward
// the observed high-water when demand falls). Growing adds tokens;
// shrinking drains whatever is free and books the shortfall as debt
// that Release retires before returning tokens to the pool, so a
// shrink never blocks and never strands a live wave.
type Budget struct {
	tokens chan struct{} // buffered to maxCap; len = free tokens

	mu        sync.Mutex
	capacity  int // current logical capacity
	maxCap    int // channel buffer bound; Resize clamps to [1, maxCap]
	debt      int // tokens to retire on Release after a shrink
	inUse     int
	highWater int // all-time
	windowHW  int // since last TakeWindowHighWater
	waits     int64
}

// NewBudget returns a budget with the given token capacity (minimum 1)
// and no resize headroom.
func NewBudget(capacity int) *Budget {
	return NewBudgetWithMax(capacity, capacity)
}

// NewBudgetWithMax returns a budget with the given starting capacity
// that can later be resized up to maxCap tokens.
func NewBudgetWithMax(capacity, maxCap int) *Budget {
	if capacity < 1 {
		capacity = 1
	}
	if maxCap < capacity {
		maxCap = capacity
	}
	b := &Budget{
		tokens:   make(chan struct{}, maxCap),
		capacity: capacity,
		maxCap:   maxCap,
	}
	for i := 0; i < capacity; i++ {
		b.tokens <- struct{}{}
	}
	return b
}

// Acquire obtains between 1 and want tokens: it blocks for the first
// (honouring ctx) and greedily takes up to want-1 more without
// blocking. It returns the number obtained, or 0 with ctx.Err() when
// the context ended first. want < 1 is treated as 1.
func (b *Budget) Acquire(ctx context.Context, want int) (int, error) {
	if want < 1 {
		want = 1
	}
	select {
	case <-b.tokens:
	default:
		// The pool is exhausted: this acquisition actually throttles.
		b.mu.Lock()
		b.waits++
		b.mu.Unlock()
		select {
		case <-b.tokens:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	got := 1
	for got < want {
		select {
		case <-b.tokens:
			got++
		default:
			b.note(got)
			return got, nil
		}
	}
	b.note(got)
	return got, nil
}

// note records an acquisition of n tokens in the gauges.
func (b *Budget) note(n int) {
	b.mu.Lock()
	b.inUse += n
	if b.inUse > b.highWater {
		b.highWater = b.inUse
	}
	if b.inUse > b.windowHW {
		b.windowHW = b.inUse
	}
	b.mu.Unlock()
}

// Release returns n tokens to the pool. If a shrink left the budget in
// debt, released tokens retire the debt first instead of re-entering
// the pool.
func (b *Budget) Release(n int) {
	if n <= 0 {
		return
	}
	b.mu.Lock()
	b.inUse -= n
	pay := min(b.debt, n)
	b.debt -= pay
	b.mu.Unlock()
	for i := 0; i < n-pay; i++ {
		b.tokens <- struct{}{}
	}
}

// Resize sets the logical capacity, clamped to [1, maxCap]. Growing
// releases fresh tokens (after retiring any outstanding debt);
// shrinking drains whatever is currently free and books the rest as
// debt, so it never blocks on live waves. Returns the capacity
// actually in effect.
func (b *Budget) Resize(capacity int) int {
	if capacity < 1 {
		capacity = 1
	}
	if capacity > b.maxCap {
		capacity = b.maxCap
	}
	b.mu.Lock()
	delta := capacity - b.capacity
	b.capacity = capacity
	var add int
	if delta > 0 {
		pay := min(b.debt, delta)
		b.debt -= pay
		add = delta - pay
	} else if delta < 0 {
		shed := -delta
		drained := 0
	drain:
		for drained < shed {
			select {
			case <-b.tokens:
				drained++
			default:
				break drain // pool empty; remainder becomes debt
			}
		}
		b.debt += shed - drained
	}
	b.mu.Unlock()
	for i := 0; i < add; i++ {
		b.tokens <- struct{}{}
	}
	return capacity
}

// Capacity returns the current logical pool size.
func (b *Budget) Capacity() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacity
}

// MaxCapacity returns the bound Resize can grow the pool to.
func (b *Budget) MaxCapacity() int { return b.maxCap }

// InUse returns the tokens currently held.
func (b *Budget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inUse
}

// HighWater returns the maximum tokens ever held at once.
func (b *Budget) HighWater() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.highWater
}

// TakeWindowHighWater returns the maximum tokens held at once since the
// previous call, and resets the window to the current in-use level.
func (b *Budget) TakeWindowHighWater() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	hw := b.windowHW
	b.windowHW = b.inUse
	return hw
}

// Waits returns how many acquisitions found the pool exhausted and had
// to block — the admission gate actually throttling speculation.
func (b *Budget) Waits() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.waits
}
