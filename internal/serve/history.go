package serve

import (
	"sort"
	"sync"
	"time"
)

// History records, per job kind and alternative name, an exponentially
// weighted moving average of observed winner latency. Priority
// admission uses it to order a block's alternatives fastest-first
// (§4.2: the cheapest way to cut speculation overhead is to not spawn
// the alternatives that historically lose), so a one-token wave runs
// exactly the alternative most likely to finish first.
//
// Only winners are recorded — losers are eliminated before their
// latency is knowable — so the ordering is exploitation-biased: an
// alternative that has never won sorts after every alternative that
// has (in declaration order among themselves) and is only explored
// when spare tokens widen the wave or earlier waves fail.
type History struct {
	mu sync.Mutex
	// ewma[kind][alt] is the smoothed winner latency in nanoseconds.
	ewma map[string]map[string]float64
}

// historyAlpha is the EWMA smoothing factor: new observations move the
// estimate by 20%, so a regressed alternative loses its priority within
// a few wins.
const historyAlpha = 0.2

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{ewma: make(map[string]map[string]float64)}
}

// Record folds one observed winner latency into the (kind, alt) EWMA.
func (h *History) Record(kind, alt string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	m := h.ewma[kind]
	if m == nil {
		m = make(map[string]float64, 4)
		h.ewma[kind] = m
	}
	if prev, ok := m[alt]; ok {
		m[alt] = (1-historyAlpha)*prev + historyAlpha*float64(d)
	} else {
		m[alt] = float64(d)
	}
}

// Estimate returns the smoothed winner latency for (kind, alt) and
// whether one has been observed.
func (h *History) Estimate(kind, alt string) (time.Duration, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if m := h.ewma[kind]; m != nil {
		if v, ok := m[alt]; ok {
			return time.Duration(v), true
		}
	}
	return 0, false
}

// Predict returns the EWMA mean and minimum winner latency across the
// named alternatives of kind — the paper's τ(C_mean) and τ(C_best)
// estimates the flight recorder compares a block's measured wall time
// against. Alternatives never observed are skipped; ok is false (and
// both durations zero) when none of them have history.
func (h *History) Predict(kind string, names []string) (mean, best time.Duration, ok bool) {
	h.mu.Lock()
	m := h.ewma[kind]
	var sum float64
	n := 0
	var minV float64
	for _, name := range names {
		v, have := m[name]
		if !have {
			continue
		}
		sum += v
		if n == 0 || v < minV {
			minV = v
		}
		n++
	}
	h.mu.Unlock()
	if n == 0 {
		return 0, 0, false
	}
	return time.Duration(sum / float64(n)), time.Duration(minV), true
}

// Order returns a permutation of indices into names, historically
// fastest first; alternatives never observed keep their declaration
// order after the observed ones. The sort is stable so equal estimates
// also preserve declaration order.
func (h *History) Order(kind string, names []string) []int {
	idx := make([]int, len(names))
	for i := range idx {
		idx[i] = i
	}
	h.mu.Lock()
	m := h.ewma[kind]
	if m == nil {
		h.mu.Unlock()
		return idx
	}
	est := make([]float64, len(names))
	known := make([]bool, len(names))
	for i, n := range names {
		if v, ok := m[n]; ok {
			est[i], known[i] = v, true
		}
	}
	h.mu.Unlock()
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		switch {
		case known[ia] && known[ib]:
			return est[ia] < est[ib]
		case known[ia]:
			return true
		default:
			return false
		}
	})
	return idx
}
