package serve

import (
	"container/list"
	"math"
	"sort"
	"sync"
	"time"
)

// History records, per job kind and alternative name, the statistics the
// serve layer's scheduling decisions run on:
//
//   - a per-alternative EWMA of observed child latency τ (winners and
//     too-late finishers both count — a loser that completed still
//     measured its alternative's cost);
//   - per-alternative play/win/failure counts (spawns, commits, and
//     observed guard failures) for bandit-style ranking and the
//     controller's fall-through model;
//   - a per-kind EWMA of the committed child's τ — the realized
//     τ(C_best) the paper's PI denominator wants;
//   - a per-kind EWMA of the obs-measured per-block overhead
//     (setup+selection+sched), fed by the flight recorder's summary
//     hook, plus a global fallback for kinds not yet sampled.
//
// Priority admission uses it to order a block's alternatives
// fastest-first (§4.2: the cheapest way to cut speculation overhead is
// to not spawn the alternatives that historically lose); the adaptive
// controller (policy.go) additionally reads win rates and failure rates
// to decide whether to speculate at all and how wide.
//
// The maps are bounded: at most maxKinds kinds are retained (LRU —
// touching a kind refreshes it) and at most maxAlts alternatives per
// kind (least-recently-touched evicted). Evictions are counted so a
// cardinality explosion is visible on /metrics instead of being an
// invisible memory leak.
type History struct {
	mu       sync.Mutex
	kinds    map[string]*kindHist
	lru      *list.List // *kindHist, front = most recently used
	maxKinds int
	maxAlts  int
	evicted  int64

	// Global overhead EWMA: fallback for kinds the sampler has not yet
	// summarized.
	globalOverhead float64
	hasGlobalOvh   bool
}

// altStat is one (kind, alt)'s learned state.
type altStat struct {
	tau     float64 // EWMA child latency in ns (wins + too-late completions)
	hasTau  bool
	plays   int64  // times spawned into a wave
	wins    int64  // times committed
	fails   int64  // observed guard/body failures
	touched uint64 // kind-local use stamp for alt eviction
}

// kindHist is one kind's learned state.
type kindHist struct {
	name string
	elem *list.Element
	alts map[string]*altStat

	winnerTau    float64 // EWMA of the committed child's τ in ns
	hasWinnerTau bool
	overhead     float64 // EWMA of obs-measured block overhead in ns
	hasOverhead  bool

	wins  int64  // committed blocks of this kind
	clock uint64 // alt touch stamp source

	// Controller decision counters (policy.go): how this kind has been
	// scheduled, and the decision count that drives explore ticks.
	decisions  uint64
	seqDec     int64
	specDec    int64
	exploreDec int64

	// seqStreak counts consecutive sequential-favoring predictions; the
	// controller only abandons speculation once the signal persists, so
	// a single EWMA noise dip cannot flap the policy.
	seqStreak int64
}

// historyAlpha is the EWMA smoothing factor: new observations move the
// estimate by 20%, so a regressed alternative loses its priority within
// a few wins.
const historyAlpha = 0.2

// Default caps for the (kind, alt) statistics maps.
const (
	DefaultMaxKinds = 512
	DefaultMaxAlts  = 64
)

// NewHistory returns an empty history with the default caps.
func NewHistory() *History { return NewHistoryWithCap(DefaultMaxKinds, DefaultMaxAlts) }

// NewHistoryWithCap returns an empty history retaining at most maxKinds
// kinds and maxAlts alternatives per kind (minimum 1 each).
func NewHistoryWithCap(maxKinds, maxAlts int) *History {
	if maxKinds < 1 {
		maxKinds = 1
	}
	if maxAlts < 1 {
		maxAlts = 1
	}
	return &History{
		kinds:    make(map[string]*kindHist),
		lru:      list.New(),
		maxKinds: maxKinds,
		maxAlts:  maxAlts,
	}
}

// kind returns kind's stats, creating (and LRU-evicting) as needed.
// Callers hold h.mu.
func (h *History) kind(name string, create bool) *kindHist {
	if k, ok := h.kinds[name]; ok {
		h.lru.MoveToFront(k.elem)
		return k
	}
	if !create {
		return nil
	}
	k := &kindHist{name: name, alts: make(map[string]*altStat, 4)}
	k.elem = h.lru.PushFront(k)
	h.kinds[name] = k
	for len(h.kinds) > h.maxKinds {
		oldest := h.lru.Back()
		victim := oldest.Value.(*kindHist)
		h.lru.Remove(oldest)
		delete(h.kinds, victim.name)
		h.evicted++
	}
	return k
}

// alt returns (kind, name)'s stats, creating (and evicting the
// least-recently-touched alternative) as needed. Callers hold h.mu.
func (h *History) alt(k *kindHist, name string, create bool) *altStat {
	if a, ok := k.alts[name]; ok {
		k.clock++
		a.touched = k.clock
		return a
	}
	if !create {
		return nil
	}
	for len(k.alts) >= h.maxAlts {
		var victimName string
		var victim *altStat
		for n, a := range k.alts {
			if victim == nil || a.touched < victim.touched {
				victimName, victim = n, a
			}
		}
		delete(k.alts, victimName)
		h.evicted++
	}
	k.clock++
	a := &altStat{touched: k.clock}
	k.alts[name] = a
	return a
}

// Record folds one observed winner latency into the (kind, alt) stats:
// the alternative's τ EWMA, its win count, and the kind's realized
// winner-τ EWMA.
func (h *History) Record(kind, alt string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	k := h.kind(kind, true)
	a := h.alt(k, alt, true)
	a.tau = ewma(a.tau, a.hasTau, float64(d))
	a.hasTau = true
	a.wins++
	k.wins++
	k.winnerTau = ewma(k.winnerTau, k.hasWinnerTau, float64(d))
	k.hasWinnerTau = true
}

// RecordSpawn counts one play: the alternative entered a wave.
func (h *History) RecordSpawn(kind, alt string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.alt(h.kind(kind, true), alt, true).plays++
}

// RecordTooLate folds a loser's completed latency into its τ EWMA: the
// alternative lost the race but still measured its cost.
func (h *History) RecordTooLate(kind, alt string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	a := h.alt(h.kind(kind, true), alt, true)
	a.tau = ewma(a.tau, a.hasTau, float64(d))
	a.hasTau = true
}

// RecordFail counts one observed guard/body failure for (kind, alt).
func (h *History) RecordFail(kind, alt string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.alt(h.kind(kind, true), alt, true).fails++
}

// RecordOverhead folds one obs-measured per-block overhead
// (setup+selection+sched) into the kind's EWMA and the global fallback.
func (h *History) RecordOverhead(kind string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	k := h.kind(kind, true)
	k.overhead = ewma(k.overhead, k.hasOverhead, float64(d))
	k.hasOverhead = true
	h.globalOverhead = ewma(h.globalOverhead, h.hasGlobalOvh, float64(d))
	h.hasGlobalOvh = true
}

// Overhead returns the kind's smoothed per-block overhead, falling back
// to the global EWMA when the kind has not been sampled yet.
func (h *History) Overhead(kind string) (time.Duration, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if k := h.kind(kind, false); k != nil && k.hasOverhead {
		return time.Duration(k.overhead), true
	}
	if h.hasGlobalOvh {
		return time.Duration(h.globalOverhead), true
	}
	return 0, false
}

// Evictions returns how many kinds and alternatives the caps evicted.
func (h *History) Evictions() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.evicted
}

// Kinds returns the number of kinds currently retained.
func (h *History) Kinds() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.kinds)
}

// Estimate returns the smoothed child latency for (kind, alt) and
// whether one has been observed.
func (h *History) Estimate(kind, alt string) (time.Duration, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	k := h.kind(kind, false)
	if k == nil {
		return 0, false
	}
	if a := h.alt(k, alt, false); a != nil && a.hasTau {
		return time.Duration(a.tau), true
	}
	return 0, false
}

// Predict returns the EWMA estimates the paper's PI is computed from:
// mean is τ(C_mean), the average smoothed latency across the named
// alternatives that have history; best is the realized τ(C_best) — the
// kind's winner-τ EWMA when one exists, the minimum alternative EWMA
// otherwise; overhead is the obs-fed per-block overhead estimate (zero
// until the flight recorder has summarized a block of this kind or any
// kind). ok is false (all durations zero) when no named alternative has
// history.
func (h *History) Predict(kind string, names []string) (mean, best, overhead time.Duration, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	k := h.kind(kind, false)
	if k == nil {
		if h.hasGlobalOvh {
			overhead = time.Duration(h.globalOverhead)
		}
		return 0, 0, overhead, false
	}
	var sum, minV float64
	n := 0
	for _, name := range names {
		a := k.alts[name]
		if a == nil || !a.hasTau {
			continue
		}
		sum += a.tau
		if n == 0 || a.tau < minV {
			minV = a.tau
		}
		n++
	}
	if k.hasOverhead {
		overhead = time.Duration(k.overhead)
	} else if h.hasGlobalOvh {
		overhead = time.Duration(h.globalOverhead)
	}
	if n == 0 {
		return 0, 0, overhead, false
	}
	best = time.Duration(minV)
	if k.hasWinnerTau {
		best = time.Duration(k.winnerTau)
	}
	return time.Duration(sum / float64(n)), best, overhead, true
}

// Order returns a permutation of indices into names, historically
// fastest first; alternatives never observed keep their declaration
// order after the observed ones. The sort is stable so equal estimates
// also preserve declaration order. This is the pure-exploitation
// ordering the static pool uses; the adaptive controller orders
// speculative waves with OrderUCB instead.
func (h *History) Order(kind string, names []string) []int {
	idx := make([]int, len(names))
	for i := range idx {
		idx[i] = i
	}
	h.mu.Lock()
	k := h.kind(kind, false)
	if k == nil {
		h.mu.Unlock()
		return idx
	}
	est := make([]float64, len(names))
	known := make([]bool, len(names))
	for i, n := range names {
		if a := k.alts[n]; a != nil && a.hasTau {
			est[i], known[i] = a.tau, true
		}
	}
	h.mu.Unlock()
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		switch {
		case known[ia] && known[ib]:
			return est[ia] < est[ib]
		case known[ia]:
			return true
		default:
			return false
		}
	})
	return idx
}

// altView is one alternative's statistics snapshot, used by the
// controller's decision model.
type altView struct {
	tau      float64 // estimated child latency (ns; fallback-filled)
	hasTau   bool
	plays    int64
	wins     int64
	winRate  float64 // Laplace-smoothed wins/plays
	failRate float64 // Laplace-smoothed fails/plays
	winShare float64 // wins / kind wins (0 when the kind has none)
	score    float64 // UCB score: lower = schedule earlier
}

// OrderUCB returns a permutation of indices into names ranked by a UCB
// score over historical win rate and latency — the bandit ordering
// speculative waves spawn in — plus each alternative's statistics view
// aligned with names. c is the exploration constant: 0 is pure
// exploitation; larger values pull rarely-played alternatives forward.
//
// The score is (τ / winRate) shrunk by an optimism factor
// 1 + c·sqrt(ln(totalPlays)/plays): an alternative that wins often and
// fast scores low (runs first), and one that has barely been tried gets
// the benefit of the doubt. Ties — in particular a cold kind where every
// score is the same fallback — preserve declaration order (stable sort),
// so cold-start ordering is deterministic.
func (h *History) OrderUCB(kind string, names []string, c float64) ([]int, []altView) {
	idx := make([]int, len(names))
	for i := range idx {
		idx[i] = i
	}
	views := make([]altView, len(names))

	h.mu.Lock()
	k := h.kind(kind, false)
	var totalPlays, kindWins int64
	if k != nil {
		kindWins = k.wins
		for i, n := range names {
			if a := k.alts[n]; a != nil {
				views[i] = altView{tau: a.tau, hasTau: a.hasTau, plays: a.plays, wins: a.wins}
				totalPlays += a.plays
				views[i].failRate = (float64(a.fails) + 0.5) / (float64(a.plays) + 1)
			} else {
				views[i].failRate = 0.5
			}
		}
	} else {
		for i := range views {
			views[i].failRate = 0.5
		}
	}
	h.mu.Unlock()

	// Fallback τ for never-observed alternatives: the mean of the known
	// estimates, or a 1ms nominal when nothing is known.
	var sum float64
	n := 0
	for i := range views {
		if views[i].hasTau {
			sum += views[i].tau
			n++
		}
	}
	fallback := float64(time.Millisecond)
	if n > 0 {
		fallback = sum / float64(n)
	}
	for i := range views {
		v := &views[i]
		if !v.hasTau {
			v.tau = fallback
		}
		v.winRate = (float64(v.wins) + 1) / (float64(v.plays) + 2)
		if kindWins > 0 {
			v.winShare = float64(v.wins) / float64(kindWins)
		}
		optimism := 1 + c*math.Sqrt(math.Log(float64(totalPlays)+2)/float64(v.plays+1))
		v.score = v.tau / v.winRate / optimism
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return views[idx[a]].score < views[idx[b]].score
	})
	return idx, views
}

// KindSnapshot is one kind's aggregate view for introspection
// (adaptbench assertions, /metrics debugging).
type KindSnapshot struct {
	Wins             int64 `json:"wins"`
	Alts             int   `json:"alts"`
	SeqDecisions     int64 `json:"seq_decisions"`
	SpecDecisions    int64 `json:"spec_decisions"`
	ExploreDecisions int64 `json:"explore_decisions"`
}

// Kind returns the named kind's aggregate snapshot (zero when unknown).
func (h *History) Kind(kind string) KindSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	k := h.kind(kind, false)
	if k == nil {
		return KindSnapshot{}
	}
	return KindSnapshot{
		Wins:             k.wins,
		Alts:             len(k.alts),
		SeqDecisions:     k.seqDec,
		SpecDecisions:    k.specDec,
		ExploreDecisions: k.exploreDec,
	}
}

// noteDecision records one controller decision against the kind and
// returns the kind's decision ordinal (1-based) so the controller can
// schedule periodic explore ticks deterministically per kind.
func (h *History) noteDecision(kind string, d decisionKind) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	k := h.kind(kind, true)
	k.decisions++
	switch d {
	case decideSequential:
		k.seqDec++
	case decideSpeculate:
		k.specDec++
	case decideExplore:
		k.exploreDec++
	}
	return k.decisions
}

// noteSeqSignal folds one sequential-favoring (or not) prediction into
// the kind's streak and returns the consecutive count; a speculate
// signal resets it.
func (h *History) noteSeqSignal(kind string, seq bool) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	k := h.kind(kind, true)
	if seq {
		k.seqStreak++
	} else {
		k.seqStreak = 0
	}
	return k.seqStreak
}

// decisionOrdinal peeks the kind's next decision ordinal without
// recording anything. Callers hold nothing; used to plan explore ticks.
func (h *History) decisionOrdinal(kind string) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if k := h.kind(kind, false); k != nil {
		return k.decisions + 1
	}
	return 1
}

// wins returns the kind's committed-block count.
func (h *History) winsOf(kind string) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if k := h.kind(kind, false); k != nil {
		return k.wins
	}
	return 0
}

// ewma folds x into a smoothed estimate.
func ewma(prev float64, has bool, x float64) float64 {
	if !has {
		return x
	}
	return (1-historyAlpha)*prev + historyAlpha*x
}
