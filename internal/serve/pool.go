package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"altrun/internal/core"
	"altrun/internal/ids"
	"altrun/internal/obs"
	"altrun/internal/trace"
)

// Config tunes a Pool.
type Config struct {
	// Workers is the number of jobs executing concurrently
	// (default max(4, GOMAXPROCS)).
	Workers int
	// SpecTokens is the speculation budget: the machine-wide bound on
	// live speculative worlds (default 2×Workers).
	SpecTokens int
	// MaxDegree caps how many alternatives one job races at once
	// (default 4); Job.MaxDegree may lower it per job.
	MaxDegree int
	// QueueDepth bounds the admission queue; a full queue rejects
	// submissions with ErrQueueFull (default 256).
	QueueDepth int
	// DefaultDeadline applies to jobs that set none (0 = unbounded).
	DefaultDeadline time.Duration
	// DefaultSpaceSize is the root-world size for jobs that set none
	// (default 64 KiB).
	DefaultSpaceSize int64
	// Runtime, when non-nil, is the real-mode runtime to execute on;
	// the pool installs itself as its world observer. Nil builds a
	// private runtime.
	Runtime *core.Runtime
	// NewClaim, when non-nil, supplies the commit arbiter for each
	// job's alternative block — e.g. a distributed majority-consensus
	// claim keyed per job so a block submitted to one node commits
	// across the peer group. Nil keeps the local in-process arbiter.
	NewClaim func(job Job, id uint64) core.ClaimFunc
	// Recorder, when non-nil, samples jobs into the speculation flight
	// recorder: each sampled job's block becomes a causal timeline with
	// the paper's setup/runtime/selection decomposition and measured vs
	// predicted PI (predictions come from the pool's EWMA history).
	Recorder *obs.Recorder
	// Adapt configures the adaptive speculation controller (policy.go):
	// per-job sequential-vs-speculative decisions, degree selection,
	// bandit spawn ordering, and token-budget resizing. The zero value
	// keeps the static policy; the controller can also be flipped on at
	// runtime via Pool.Controller().SetEnabled.
	Adapt AdaptConfig
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = max(4, runtime.GOMAXPROCS(0))
	}
	if c.SpecTokens <= 0 {
		c.SpecTokens = 2 * c.Workers
	}
	if c.MaxDegree <= 0 {
		c.MaxDegree = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.DefaultSpaceSize <= 0 {
		c.DefaultSpaceSize = 64 << 10
	}
	c.Adapt = c.Adapt.withDefaults(c.SpecTokens)
	return c
}

// PoolStats is a point-in-time view of the pool for /metrics.
type PoolStats struct {
	trace.PoolSnapshot
	Workers         int   `json:"workers"`
	SpecTokens      int   `json:"spec_tokens"`
	MaxDegree       int   `json:"max_degree"`
	QueueDepth      int   `json:"queue_depth"`
	Queued          int   `json:"queued"`
	Running         int   `json:"running"`
	TokensInUse     int   `json:"tokens_in_use"`
	TokensHighWater int   `json:"tokens_high_water"`
	TokenWaits      int64 `json:"budget_waits"`
}

// Pool is the admission-controlled job executor. Create with NewPool;
// the zero value is not usable.
type Pool struct {
	cfg    Config
	rt     *core.Runtime
	budget *Budget
	hist   *History
	ctl    *Controller

	counters trace.PoolCounters
	running  atomic.Int64

	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue chan *task
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	nextID   uint64
	tasks    map[uint64]*task
}

// NewPool builds a pool, installs it as the runtime's world observer,
// and starts its workers. Call Drain (or Close) to stop it.
func NewPool(cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	rt := cfg.Runtime
	if rt == nil {
		rt = core.New(core.Config{})
	}
	if rt.Engine() != nil {
		return nil, errors.New("serve: pool requires a real-mode runtime")
	}
	p := &Pool{
		cfg:    cfg,
		rt:     rt,
		budget: NewBudgetWithMax(cfg.SpecTokens, cfg.Adapt.MaxTokens),
		hist:   NewHistory(),
		queue:  make(chan *task, cfg.QueueDepth),
		tasks:  make(map[uint64]*task),
	}
	p.ctl = NewController(cfg.Adapt, p.hist)
	// Close the PI feedback loop: every sampled block's measured
	// overhead (setup+selection+sched) feeds the history's per-kind
	// overhead EWMA, which both the controller's decisions and the
	// folded PI predictions read.
	cfg.Recorder.SetOverheadHook(p.hist.RecordOverhead)
	p.baseCtx, p.baseCancel = context.WithCancel(context.Background())
	rt.SetWorldObserver(p)
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range p.queue {
				p.runTask(t)
			}
		}()
	}
	return p, nil
}

// Runtime returns the runtime jobs execute on.
func (p *Pool) Runtime() *core.Runtime { return p.rt }

// History returns the pool's winner-latency history (for priority
// admission introspection).
func (p *Pool) History() *History { return p.hist }

// Recorder returns the pool's flight recorder (nil when not recording).
func (p *Pool) Recorder() *obs.Recorder { return p.cfg.Recorder }

// Controller returns the adaptive speculation controller (never nil;
// disabled unless Config.Adapt.Enabled or SetEnabled(true)).
func (p *Pool) Controller() *Controller { return p.ctl }

// Budget returns the pool's speculation token budget.
func (p *Pool) Budget() *Budget { return p.budget }

// PolicyStats snapshots the adaptive controller's decision counters.
func (p *Pool) PolicyStats() PolicyStats { return p.ctl.Stats(p.budget) }

// WorldRegistered implements core.WorldObserver: it meters the live
// speculative worlds the budget must bound.
func (p *Pool) WorldRegistered(_ ids.PID, speculative bool) {
	if speculative {
		p.counters.SpecEnter()
	}
}

// WorldUnregistered implements core.WorldObserver.
func (p *Pool) WorldUnregistered(_ ids.PID, speculative bool) {
	if speculative {
		p.counters.SpecExit()
	}
}

// Stats snapshots the pool's counters and gauges.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		PoolSnapshot:    p.counters.Snapshot(),
		Workers:         p.cfg.Workers,
		SpecTokens:      p.budget.Capacity(),
		MaxDegree:       p.cfg.MaxDegree,
		QueueDepth:      p.cfg.QueueDepth,
		Queued:          len(p.queue),
		Running:         int(p.running.Load()),
		TokensInUse:     p.budget.InUse(),
		TokensHighWater: p.budget.HighWater(),
		TokenWaits:      p.budget.Waits(),
	}
}

// Submit runs the job through admission control: it is rejected when
// the pool is draining (ErrDraining) or the queue is full
// (ErrQueueFull), otherwise queued and executed by the next free
// worker.
func (p *Pool) Submit(j Job) (*Ticket, error) {
	if len(j.Alts) == 0 {
		return nil, fmt.Errorf("serve: job %q has no alternatives", j.Name)
	}
	deadline := j.Deadline
	if deadline == 0 {
		deadline = p.cfg.DefaultDeadline
	}
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		p.counters.JobsRejected.Add(1)
		return nil, ErrDraining
	}
	p.nextID++
	t := &task{
		id:        p.nextID,
		job:       j,
		status:    StatusQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if deadline > 0 {
		t.ctx, t.cancel = context.WithTimeout(p.baseCtx, deadline)
	} else {
		t.ctx, t.cancel = context.WithCancel(p.baseCtx)
	}
	select {
	case p.queue <- t:
	default:
		p.mu.Unlock()
		t.cancel()
		p.counters.JobsRejected.Add(1)
		return nil, ErrQueueFull
	}
	p.tasks[t.id] = t
	p.mu.Unlock()
	p.counters.JobsSubmitted.Add(1)
	return &Ticket{t: t}, nil
}

// Ticket returns the handle for a previously submitted job.
func (p *Pool) Ticket(id uint64) (*Ticket, error) {
	p.mu.Lock()
	t, ok := p.tasks[id]
	p.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	return &Ticket{t: t}, nil
}

// Forget drops a terminal job from the pool's index (the daemon calls
// it after a result is fetched, so the index doesn't grow forever).
func (p *Pool) Forget(id uint64) {
	p.mu.Lock()
	if t, ok := p.tasks[id]; ok && func() bool { t.mu.Lock(); defer t.mu.Unlock(); return t.status.Terminal() }() {
		delete(p.tasks, id)
	}
	p.mu.Unlock()
}

// Drain stops admission and waits for queued and in-flight jobs to
// finish, or for ctx to end (returning its error with jobs still
// running). Safe to call more than once.
func (p *Pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	if !p.draining {
		p.draining = true
		close(p.queue)
	}
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close cancels every job — queued and in-flight, aborting their
// speculative subtrees — and then drains.
func (p *Pool) Close(ctx context.Context) error {
	p.baseCancel()
	p.mu.Lock()
	for _, t := range p.tasks {
		t.mu.Lock()
		root := t.root
		t.mu.Unlock()
		if root != nil {
			root.Cancel()
		}
	}
	p.mu.Unlock()
	return p.Drain(ctx)
}

// finishTask applies a terminal result exactly once, stamping elapsed
// time and counters.
func (p *Pool) finishTask(t *task, res JobResult) {
	t.mu.Lock()
	if t.status.Terminal() {
		t.mu.Unlock()
		return
	}
	res.Elapsed = time.Since(t.submitted)
	t.status = res.Status
	t.res = res
	t.mu.Unlock()
	t.cancel()
	close(t.done)
	switch res.Status {
	case StatusDone:
		p.counters.JobsCompleted.Add(1)
	case StatusTimedOut:
		p.counters.JobsTimedOut.Add(1)
	case StatusCancelled:
		p.counters.JobsCancelled.Add(1)
	default:
		p.counters.JobsFailed.Add(1)
	}
}

// ctxResult maps a job context's end into a terminal result.
func (t *task) ctxResult() JobResult {
	t.mu.Lock()
	explicit := t.cancelled
	t.mu.Unlock()
	if !explicit && errors.Is(t.ctx.Err(), context.DeadlineExceeded) {
		return JobResult{Status: StatusTimedOut, WinnerIndex: -1, Err: ErrDeadline}
	}
	return JobResult{Status: StatusCancelled, WinnerIndex: -1, Err: ErrCancelled}
}

// runTask executes one job: root world, priority-ordered waves through
// the speculation budget, commit or exhaustion.
func (p *Pool) runTask(t *task) {
	if tkStatus(t).Terminal() {
		return // cancelled while queued
	}
	p.running.Add(1)
	defer p.running.Add(-1)
	t.setStatus(StatusRunning)
	j := t.job
	if t.ctx.Err() != nil {
		p.finishTask(t, t.ctxResult())
		return
	}

	// Budget resize tick: cheap no-op until the controller's interval
	// elapses (and always a no-op with the controller disabled).
	p.ctl.MaybeResize(p.budget, time.Now())

	// Flight recorder: nil-safe throughout — br is nil for unsampled
	// jobs (or without a recorder) and every obs call below no-ops.
	br := p.cfg.Recorder.StartBlock(j.Kind, j.Name, t.id, j.TraceID)
	var predMean, predBest, predOvh time.Duration
	decision := "static"
	if br != nil {
		defer func() {
			st, res := t.state()
			br.Finish(obs.Outcome{
				Status:            st.String(),
				Winner:            res.Winner,
				Decision:          decision,
				PredictedMean:     predMean,
				PredictedBest:     predBest,
				PredictedOverhead: predOvh,
			})
		}()
	}

	spaceSize := j.SpaceSize
	if spaceSize <= 0 {
		spaceSize = p.cfg.DefaultSpaceSize
	}
	root, err := p.rt.NewRootWorld("job:"+j.Name, spaceSize)
	if err != nil {
		p.finishTask(t, JobResult{Status: StatusFailed, WinnerIndex: -1, Err: err})
		return
	}
	// Retire the root (registration + pages) whatever happens: a
	// service must not leak a world per request.
	defer p.rt.Shutdown(root)
	if j.Cleanup != nil {
		// LIFO with the Shutdown defer above: Cleanup sees the root
		// still live, on success and failure paths alike.
		defer j.Cleanup(root)
	}
	t.mu.Lock()
	t.root = root
	t.mu.Unlock()
	// Wire the job's deadline/cancellation into sibling elimination:
	// when the context ends, the root is cancelled and the in-flight
	// block tears down its whole speculative subtree.
	stopAfter := context.AfterFunc(t.ctx, root.Cancel)
	defer stopAfter()

	if j.Init != nil {
		if err := j.Init(root); err != nil {
			p.finishTask(t, JobResult{Status: StatusFailed, WinnerIndex: -1, Err: fmt.Errorf("init: %w", err)})
			return
		}
	}

	names := make([]string, len(j.Alts))
	for i := range j.Alts {
		names[i] = j.Alts[i].Name
		if names[i] == "" {
			names[i] = fmt.Sprintf("alt-%d", i+1)
		}
	}

	maxDegree := p.cfg.MaxDegree
	if j.MaxDegree > 0 && j.MaxDegree < maxDegree {
		maxDegree = j.MaxDegree
	}

	// Admission plan. Static: priority admission, historically-fastest
	// alternatives first, full-width waves. Adaptive: the controller
	// decides whether this job speculates at all (sequential
	// fall-through when predicted PI is below threshold), how wide, and
	// in what (bandit-ranked) order.
	var remaining []int
	width := maxDegree
	if p.ctl.Enabled() {
		dec := p.ctl.Decide(j.Kind, names, maxDegree)
		remaining = dec.Order
		width = dec.Degree
		decision = dec.Kind.String()
		predMean, predBest, predOvh = dec.PredMean, dec.PredBest, dec.PredOverhead
	} else {
		remaining = p.hist.Order(j.Kind, names)
		if br != nil {
			// Read the EWMA estimates before the block runs: this is
			// the PI prediction the measured wall time is compared
			// against.
			predMean, predBest, predOvh, _ = p.hist.Predict(j.Kind, names)
		}
	}

	// One claim per job, shared across waves: if a wave fails without
	// claiming, the next wave races for the same (still unclaimed) key.
	var claim core.ClaimFunc
	if p.cfg.NewClaim != nil {
		claim = p.cfg.NewClaim(j, t.id)
	}

	// The history observer rides every wave (stacked under the flight
	// recorder's sampled probe): plays, per-alternative latency, and
	// failure attribution feed the bandit ranking and the PI model.
	observer := newAltObserver(p.hist, j.Kind)

	waves := 0
	for len(remaining) > 0 {
		want := min(len(remaining), width)
		got, err := p.budget.Acquire(t.ctx, want)
		if err != nil {
			p.finishTask(t, t.ctxResult())
			return
		}
		wave := make([]core.Alt, got)
		waveIdx := remaining[:got]
		for i, idx := range waveIdx {
			wave[i] = j.Alts[idx]
			wave[i].Name = names[idx]
		}
		remaining = remaining[got:]
		waves++
		p.counters.Waves.Add(1)
		if waves > 1 {
			p.counters.LazyWaves.Add(1)
		}

		wr := br.StartWave(got)
		res, err := root.RunAlt(core.Options{
			SyncElimination: true, // losers are gone before tokens free
			FullCopy:        j.FullCopy,
			Claim:           claim,
			Probe:           core.FanoutProbe(observer, wr.Probe()),
		}, wave...)
		p.budget.Release(got)
		wr.End(err)

		switch {
		case err == nil:
			// The winner's latency was already folded into the history
			// by the wave observer (spawn→win, the same τ the probe
			// reported to the flight recorder).
			winIdx := waveIdx[res.Index]
			p.counters.AltsUnspawned.Add(int64(len(remaining)))
			out := JobResult{
				Status:        StatusDone,
				Winner:        names[winIdx],
				WinnerIndex:   winIdx,
				Waves:         waves,
				AltsUnspawned: len(remaining),
			}
			if j.Extract != nil {
				v, xerr := j.Extract(root)
				if xerr != nil {
					p.finishTask(t, JobResult{Status: StatusFailed, WinnerIndex: -1, Waves: waves,
						Err: fmt.Errorf("extract: %w", xerr)})
					return
				}
				out.Value = v
			}
			p.finishTask(t, out)
			return
		case errors.Is(err, core.ErrAllFailed):
			// Lazy spawn: the admitted wave failed; the next wave runs
			// the alternatives speculation throttling had deferred.
			continue
		case errors.Is(err, core.ErrEliminated), errors.Is(err, core.ErrTimeout):
			// The root was cancelled (deadline or abandon) and the
			// subtree is already torn down.
			res := t.ctxResult()
			res.Waves = waves
			p.finishTask(t, res)
			return
		default:
			p.finishTask(t, JobResult{Status: StatusFailed, WinnerIndex: -1, Waves: waves, Err: err})
			return
		}
	}
	p.finishTask(t, JobResult{Status: StatusFailed, WinnerIndex: -1, Waves: waves, Err: core.ErrAllFailed})
}

func tkStatus(t *task) Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}
