package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"altrun/internal/core"
)

// dominantHistory seeds a kind where alternative "a" reliably wins at
// 1ms while "b" and "c" are slower fallbacks that never genuinely fail,
// and the per-block overhead is a solid 200µs — the PI < 1 regime where
// sequential execution saves nearly one block overhead per job.
func dominantHistory() *History {
	h := NewHistory()
	for i := 0; i < 40; i++ {
		h.RecordSpawn("dom", "a")
		h.Record("dom", "a", time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		h.RecordSpawn("dom", "b")
		h.RecordTooLate("dom", "b", 2500*time.Microsecond)
		h.RecordSpawn("dom", "c")
		h.RecordTooLate("dom", "c", 3*time.Millisecond)
	}
	h.RecordOverhead("dom", 200*time.Microsecond)
	return h
}

// uncertainHistory seeds a kind with three equal-cost alternatives that
// each win a third of the time and genuinely fail otherwise — the
// PI > 1 regime where sequential fall-through pays for failed waves.
func uncertainHistory() *History {
	h := NewHistory()
	for _, name := range []string{"p0", "p1", "p2"} {
		for i := 0; i < 10; i++ {
			h.RecordSpawn("unc", name)
		}
		for i := 0; i < 3; i++ {
			h.Record("unc", name, 2*time.Millisecond)
		}
		for i := 0; i < 4; i++ {
			h.RecordFail("unc", name)
		}
	}
	h.RecordOverhead("unc", 150*time.Microsecond)
	return h
}

func newTestController(h *History) *Controller {
	return NewController(AdaptConfig{Enabled: true}.withDefaults(8), h)
}

func TestDecideColdStartSpeculatesFullDegree(t *testing.T) {
	c := newTestController(NewHistory())
	d := c.Decide("new-kind", []string{"x", "y", "z"}, 3)
	if d.Kind != decideSpeculate {
		t.Fatalf("cold decision = %v, want speculate", d.Kind)
	}
	if d.Degree != 3 {
		t.Fatalf("cold degree = %d, want full width 3", d.Degree)
	}
	if want := []int{0, 1, 2}; fmt.Sprint(d.Order) != fmt.Sprint(want) {
		t.Fatalf("cold order = %v, want declaration order %v", d.Order, want)
	}
}

func TestDecideSequentialNeedsConfirmedSignal(t *testing.T) {
	c := newTestController(dominantHistory())
	names := []string{"a", "b", "c"}

	// First sequential-favoring prediction: still speculates (one EWMA
	// dip must not flap the policy).
	d1 := c.Decide("dom", names, 3)
	if d1.Kind != decideSpeculate {
		t.Fatalf("first decision = %v, want speculate (unconfirmed signal)", d1.Kind)
	}
	if d1.PredPI >= 1 == false && d1.PredPI == 0 {
		t.Fatalf("first decision carries no prediction: %+v", d1)
	}

	// Second consecutive signal: commits to sequential fall-through.
	d2 := c.Decide("dom", names, 3)
	if d2.Kind != decideSequential {
		t.Fatalf("second decision = %v (PI %.3f), want sequential", d2.Kind, d2.PredPI)
	}
	if d2.Degree != 1 {
		t.Fatalf("sequential degree = %d, want 1", d2.Degree)
	}
	if d2.PredPI >= 1 {
		t.Fatalf("sequential chosen with PredPI %.3f ≥ 1", d2.PredPI)
	}
	if d2.Order[0] != 0 {
		t.Fatalf("sequential order = %v, want the dominant alternative first", d2.Order)
	}
}

func TestDecideKeepsSpeculatingWhenUncertain(t *testing.T) {
	c := newTestController(uncertainHistory())
	names := []string{"p0", "p1", "p2"}
	for i := 0; i < 5; i++ {
		d := c.Decide("unc", names, 3)
		if d.Kind == decideSequential {
			t.Fatalf("decision %d = sequential (PI %.3f) on an uncertain kind", i, d.PredPI)
		}
		if d.Degree != 3 {
			t.Fatalf("decision %d degree = %d, want 3 (every path absorbs fall-through mass)", i, d.Degree)
		}
	}
}

func TestDecideDegreeRuleCutsUselessAlternatives(t *testing.T) {
	h := NewHistory()
	// "first" wins at 1ms but genuinely fails ~30% of the time, so
	// "second" absorbs real fall-through mass. "third" guards a
	// fall-through chain that almost never happens and never wins:
	// its marginal gain is below one block overhead.
	for i := 0; i < 20; i++ {
		h.RecordSpawn("deg", "first")
		h.RecordSpawn("deg", "second")
	}
	for i := 0; i < 14; i++ {
		h.Record("deg", "first", time.Millisecond)
	}
	for i := 0; i < 6; i++ {
		h.RecordFail("deg", "first")
		h.Record("deg", "second", 1200*time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.RecordSpawn("deg", "third")
		h.RecordTooLate("deg", "third", 1500*time.Microsecond)
	}
	h.RecordOverhead("deg", 150*time.Microsecond)

	c := newTestController(h)
	d := c.Decide("deg", []string{"first", "second", "third"}, 3)
	if d.Kind != decideSpeculate {
		t.Fatalf("decision = %v (PI %.3f), want speculate", d.Kind, d.PredPI)
	}
	if d.Degree != 2 {
		t.Fatalf("degree = %d, want 2: third's marginal gain is under one overhead", d.Degree)
	}
}

func TestDecideExploreTickRefreshesStatistics(t *testing.T) {
	h := dominantHistory()
	cfg := AdaptConfig{Enabled: true, ExploreEvery: 4}.withDefaults(8)
	c := NewController(cfg, h)
	names := []string{"a", "b", "c"}

	var kinds []decisionKind
	for i := 0; i < 8; i++ {
		kinds = append(kinds, c.Decide("dom", names, 3).Kind)
	}
	// Ordinals 4 and 8 are explore ticks; ordinal 1 is the unconfirmed
	// first sequential signal; the rest are sequential.
	for _, ord := range []int{3, 7} {
		if kinds[ord] != decideExplore {
			t.Fatalf("ordinal %d = %v, want explore (kinds: %v)", ord+1, kinds[ord], kinds)
		}
	}
	if kinds[0] != decideSpeculate {
		t.Fatalf("ordinal 1 = %v, want speculate (unconfirmed signal)", kinds[0])
	}
	for _, ord := range []int{1, 2, 4, 5, 6} {
		if kinds[ord] != decideSequential {
			t.Fatalf("ordinal %d = %v, want sequential (kinds: %v)", ord+1, kinds[ord], kinds)
		}
	}
	snap := h.Kind("dom")
	if snap.ExploreDecisions != 2 || snap.SeqDecisions != 5 || snap.SpecDecisions != 1 {
		t.Fatalf("kind counters = %+v, want 2 explore / 5 seq / 1 spec", snap)
	}
}

func TestMaybeResizeGrowsUnderPressure(t *testing.T) {
	cfg := AdaptConfig{Enabled: true, ResizeInterval: time.Second, MinTokens: 2, MaxTokens: 16}.withDefaults(4)
	c := NewController(cfg, NewHistory())
	b := NewBudgetWithMax(4, 16)

	// Saturate the pool and record a blocked acquisition.
	if got, err := b.Acquire(context.Background(), 4); err != nil || got != 4 {
		t.Fatalf("acquire = %d, %v", got, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := b.Acquire(ctx, 1); err == nil {
		t.Fatal("acquire on an exhausted pool should have blocked until ctx expiry")
	}

	c.MaybeResize(b, time.Now().Add(2*time.Second))
	if got := b.Capacity(); got != 5 {
		t.Fatalf("capacity after pressured resize = %d, want 5 (4 + 4/4)", got)
	}
	if c.grows.Load() != 1 {
		t.Fatalf("grows = %d, want 1", c.grows.Load())
	}
}

func TestMaybeResizeShrinksTowardHighWater(t *testing.T) {
	cfg := AdaptConfig{Enabled: true, ResizeInterval: time.Second, MinTokens: 2, MaxTokens: 16}.withDefaults(8)
	c := NewController(cfg, NewHistory())
	b := NewBudgetWithMax(8, 16)

	// Use only 2 of 8 tokens, no waits: the window high-water is 2.
	if got, err := b.Acquire(context.Background(), 2); err != nil || got != 2 {
		t.Fatalf("acquire = %d, %v", got, err)
	}
	b.Release(2)

	c.MaybeResize(b, time.Now().Add(2*time.Second))
	if got := b.Capacity(); got != 6 {
		t.Fatalf("capacity after idle resize = %d, want 6 (one 8/4 step toward the high-water)", got)
	}
	if c.shrinks.Load() != 1 {
		t.Fatalf("shrinks = %d, want 1", c.shrinks.Load())
	}

	// Repeated idle windows keep stepping down but never below MinTokens.
	for i := 0; i < 10; i++ {
		c.MaybeResize(b, time.Now().Add(time.Duration(4+i)*time.Second))
	}
	if got := b.Capacity(); got != 2 {
		t.Fatalf("capacity after sustained idling = %d, want MinTokens 2", got)
	}
}

func TestMaybeResizeNoOpWithinInterval(t *testing.T) {
	cfg := AdaptConfig{Enabled: true, ResizeInterval: time.Hour}.withDefaults(4)
	c := NewController(cfg, NewHistory())
	b := NewBudgetWithMax(4, 16)
	c.MaybeResize(b, time.Now())
	if got := b.Capacity(); got != 4 {
		t.Fatalf("capacity changed to %d within the resize interval", got)
	}
}

func TestPolicyStatsNilController(t *testing.T) {
	var c *Controller
	if c.Enabled() {
		t.Fatal("nil controller reports enabled")
	}
	if s := c.Stats(nil); s.Enabled || s.Decisions != 0 {
		t.Fatalf("nil controller stats = %+v, want zero view", s)
	}
}

// TestAdaptivePoolSequentialOnDominantKind is the end-to-end loop: a
// pool under a concurrent job stream whose kind has one dominant
// alternative must learn, purely from its own probe-fed history, to
// stop speculating on it.
func TestAdaptivePoolSequentialOnDominantKind(t *testing.T) {
	p, err := NewPool(Config{Workers: 4, SpecTokens: 8, MaxDegree: 3, QueueDepth: 8,
		Adapt: AdaptConfig{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close(context.Background())
	burn := func(iters int) func(w *core.World) error {
		return func(w *core.World) error {
			acc := uint64(7)
			for i := 0; i < iters; i++ {
				acc = acc*6364136223846793005 + 1442695040888963407
				if i&8191 == 0 {
					if w.Cancelled() {
						return errors.New("cancelled")
					}
					runtime.Gosched()
				}
			}
			return w.WriteUint64(0, acc|1)
		}
	}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for i := 0; i < 13; i++ {
				tk, err := p.Submit(Job{
					Kind: "dom",
					Name: fmt.Sprintf("c%d-%d", client, i),
					Alts: []core.Alt{
						{Name: "lean", Body: burn(100_000)},
						{Name: "mid", Body: burn(300_000)},
						{Name: "heavy", Body: burn(300_000)},
					},
					SpaceSize: 4096,
					Deadline:  10 * time.Second,
				})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := tk.Wait(context.Background()); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	snap := p.History().Kind("dom")
	if snap.Wins == 0 {
		t.Fatal("probe recorded no wins")
	}
	if snap.SeqDecisions == 0 {
		t.Fatalf("controller never chose sequential execution: %+v (policy %+v)",
			snap, p.PolicyStats())
	}
	stats := p.PolicyStats()
	if stats.Decisions != 52 {
		t.Fatalf("decisions = %d, want 52", stats.Decisions)
	}
}

// TestControllerKnobFlipRace drives a 64-way job stream while flipping
// every runtime knob concurrently — the -race CI stress for the atomic
// knob plumbing.
func TestControllerKnobFlipRace(t *testing.T) {
	p, err := NewPool(Config{Workers: 4, SpecTokens: 8, MaxDegree: 3, QueueDepth: 64,
		Adapt: AdaptConfig{Enabled: true, ResizeInterval: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close(context.Background())

	stop := make(chan struct{})
	var flip sync.WaitGroup
	flip.Add(1)
	go func() {
		defer flip.Done()
		ctl := p.Controller()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ctl.SetEnabled(i%3 != 0)
			ctl.SetPIThreshold(0.5 + float64(i%4)*0.25)
			ctl.SetUCBExploration(float64(i % 3))
			ctl.SetExploreEvery(i % 8)
			time.Sleep(50 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < 64; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				tk, err := p.Submit(Job{
					Kind: fmt.Sprintf("race-%d", client%4),
					Name: fmt.Sprintf("r%d-%d", client, i),
					Alts: []core.Alt{
						{Name: "a", Body: func(w *core.World) error { return w.WriteUint64(0, 1) }},
						{Name: "b", Body: func(w *core.World) error {
							time.Sleep(200 * time.Microsecond)
							return w.WriteUint64(0, 2)
						}},
					},
					SpaceSize: 4096,
					Deadline:  10 * time.Second,
				})
				if err != nil {
					t.Error(err)
					return
				}
				res, err := tk.Wait(context.Background())
				if err != nil || res.Status != StatusDone {
					t.Errorf("client %d job %d: %v %v", client, i, err, res.Status)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	flip.Wait()
	if t.Failed() {
		return
	}
	if got := p.Stats().JobsCompleted; got != 256 {
		t.Fatalf("jobs completed = %d, want 256", got)
	}
}
