// Package serve is the admission-controlled service layer: a
// long-running pool that executes alternative-block jobs — recovery
// blocks, Prolog queries, raw core.Alt sets — under sustained load.
//
// The paper's τ(overhead) term is dominated by CPU sharing among
// speculative siblings (§4.2): beyond a small degree of speculation,
// extra alternatives slow the winner down, and under load they slow
// *everyone* down. The pool therefore throttles speculation three ways:
//
//   - a global speculation budget (Budget): a token pool bounding the
//     number of live speculative worlds machine-wide — one token per
//     spawned alternative, acquired before the block spawns and
//     released after its siblings are eliminated;
//   - per-job degree-of-speculation caps: a job never races more than
//     MaxDegree alternatives at once, however many it declares;
//   - priority admission with lazy spawn: alternatives are ordered by
//     historically-observed winner latency (History) and admitted in
//     waves — the historically-fastest first, the rest spawned lazily
//     only if the admitted wave fails. When the first wave commits,
//     the remaining alternatives are never spawned at all, which is
//     exactly the overhead §4.2 says speculation should avoid.
//
// On top of the static throttles sits the adaptive speculation
// controller (Controller, policy.go), which closes the paper's PI
// feedback loop per job kind: it predicts the PI of speculating from
// the probe-fed History (per-alternative τ and failure-rate EWMAs, the
// kind's realized winner τ, the flight recorder's overhead summaries)
// and, when sequential fall-through is predicted faster, runs the
// block one alternative per wave instead of racing; otherwise it
// bounds the wave width by marginal gain and orders spawns with a UCB
// bandit. It also resizes the global token budget against observed
// demand. Enable with Config.Adapt.
//
// Per-job deadlines and client cancellation are wired directly into
// sibling elimination: cancelling a job cancels its root world, which
// aborts the in-flight block and frees the whole speculative subtree
// (core.World.Cancel → abandoned-block teardown), so an abandoned
// request leaves zero live worlds behind.
//
//	pool, _ := serve.NewPool(serve.Config{Workers: 16, SpecTokens: 32})
//	t, _ := pool.Submit(serve.Job{Name: "q1", Alts: alts, Extract: read})
//	res, _ := t.Wait(ctx)
//
// cmd/altserved wraps the pool in an HTTP daemon; cmd/altbench
// servebench drives it closed-loop and records latency/throughput.
package serve

import "errors"

// Errors returned by the pool's admission and job paths.
var (
	// ErrQueueFull means admission control refused the job: the pool's
	// queue is at capacity. Callers should shed load or retry later.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining means the pool no longer accepts jobs.
	ErrDraining = errors.New("serve: pool draining")
	// ErrCancelled means the job was abandoned by the caller.
	ErrCancelled = errors.New("serve: job cancelled")
	// ErrDeadline means the job's deadline expired before any
	// alternative committed.
	ErrDeadline = errors.New("serve: job deadline exceeded")
	// ErrUnknownJob means the job ID is not (or no longer) known.
	ErrUnknownJob = errors.New("serve: unknown job")
)
