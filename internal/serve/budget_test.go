package serve

import (
	"context"
	"testing"
	"time"
)

func TestBudgetGreedyAcquire(t *testing.T) {
	b := NewBudget(4)
	got, err := b.Acquire(context.Background(), 3)
	if err != nil || got != 3 {
		t.Fatalf("Acquire(3) = %d, %v; want 3, nil", got, err)
	}
	// Only one token left: a want-of-3 degrades to 1 without blocking.
	got, err = b.Acquire(context.Background(), 3)
	if err != nil || got != 1 {
		t.Fatalf("Acquire(3) on near-empty pool = %d, %v; want 1, nil", got, err)
	}
	if in := b.InUse(); in != 4 {
		t.Fatalf("InUse = %d, want 4", in)
	}
	if hw := b.HighWater(); hw != 4 {
		t.Fatalf("HighWater = %d, want 4", hw)
	}
	b.Release(4)
	if in := b.InUse(); in != 0 {
		t.Fatalf("InUse after release = %d, want 0", in)
	}
}

func TestBudgetBlocksWhenExhausted(t *testing.T) {
	b := NewBudget(1)
	if _, err := b.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan int)
	go func() {
		n, err := b.Acquire(context.Background(), 2)
		if err != nil {
			t.Error(err)
		}
		acquired <- n
	}()
	select {
	case n := <-acquired:
		t.Fatalf("second Acquire returned %d tokens before any release", n)
	case <-time.After(20 * time.Millisecond):
	}
	b.Release(1)
	select {
	case n := <-acquired:
		if n != 1 {
			t.Fatalf("blocked Acquire got %d tokens, want 1", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire still blocked after release")
	}
	if b.Waits() == 0 {
		t.Fatal("Waits = 0; the blocked acquisition was not counted")
	}
}

func TestBudgetAcquireHonoursContext(t *testing.T) {
	b := NewBudget(1)
	if _, err := b.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	got, err := b.Acquire(ctx, 1)
	if got != 0 || err == nil {
		t.Fatalf("Acquire on exhausted pool with expiring ctx = %d, %v; want 0, error", got, err)
	}
}

func TestBudgetMinimumCapacity(t *testing.T) {
	b := NewBudget(0)
	if b.Capacity() != 1 {
		t.Fatalf("Capacity = %d, want 1", b.Capacity())
	}
}
