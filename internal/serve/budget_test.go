package serve

import (
	"context"
	"testing"
	"time"
)

func TestBudgetGreedyAcquire(t *testing.T) {
	b := NewBudget(4)
	got, err := b.Acquire(context.Background(), 3)
	if err != nil || got != 3 {
		t.Fatalf("Acquire(3) = %d, %v; want 3, nil", got, err)
	}
	// Only one token left: a want-of-3 degrades to 1 without blocking.
	got, err = b.Acquire(context.Background(), 3)
	if err != nil || got != 1 {
		t.Fatalf("Acquire(3) on near-empty pool = %d, %v; want 1, nil", got, err)
	}
	if in := b.InUse(); in != 4 {
		t.Fatalf("InUse = %d, want 4", in)
	}
	if hw := b.HighWater(); hw != 4 {
		t.Fatalf("HighWater = %d, want 4", hw)
	}
	b.Release(4)
	if in := b.InUse(); in != 0 {
		t.Fatalf("InUse after release = %d, want 0", in)
	}
}

func TestBudgetBlocksWhenExhausted(t *testing.T) {
	b := NewBudget(1)
	if _, err := b.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan int)
	go func() {
		n, err := b.Acquire(context.Background(), 2)
		if err != nil {
			t.Error(err)
		}
		acquired <- n
	}()
	select {
	case n := <-acquired:
		t.Fatalf("second Acquire returned %d tokens before any release", n)
	case <-time.After(20 * time.Millisecond):
	}
	b.Release(1)
	select {
	case n := <-acquired:
		if n != 1 {
			t.Fatalf("blocked Acquire got %d tokens, want 1", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire still blocked after release")
	}
	if b.Waits() == 0 {
		t.Fatal("Waits = 0; the blocked acquisition was not counted")
	}
}

func TestBudgetAcquireHonoursContext(t *testing.T) {
	b := NewBudget(1)
	if _, err := b.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	got, err := b.Acquire(ctx, 1)
	if got != 0 || err == nil {
		t.Fatalf("Acquire on exhausted pool with expiring ctx = %d, %v; want 0, error", got, err)
	}
}

func TestBudgetMinimumCapacity(t *testing.T) {
	b := NewBudget(0)
	if b.Capacity() != 1 {
		t.Fatalf("Capacity = %d, want 1", b.Capacity())
	}
}

func TestBudgetResizeGrow(t *testing.T) {
	b := NewBudgetWithMax(2, 8)
	if got := b.Resize(6); got != 6 {
		t.Fatalf("resize = %d, want 6", got)
	}
	got, err := b.Acquire(context.Background(), 8)
	if err != nil || got != 6 {
		t.Fatalf("acquire after grow = %d, %v, want all 6 tokens", got, err)
	}
}

func TestBudgetResizeClamps(t *testing.T) {
	b := NewBudgetWithMax(2, 4)
	if got := b.Resize(100); got != 4 {
		t.Fatalf("oversized resize = %d, want clamp to max 4", got)
	}
	if got := b.Resize(0); got != 1 {
		t.Fatalf("undersized resize = %d, want clamp to 1", got)
	}
	if got := b.MaxCapacity(); got != 4 {
		t.Fatalf("max capacity = %d, want 4", got)
	}
}

func TestBudgetShrinkBooksDebt(t *testing.T) {
	b := NewBudgetWithMax(4, 8)
	got, err := b.Acquire(context.Background(), 4)
	if err != nil || got != 4 {
		t.Fatalf("acquire = %d, %v", got, err)
	}

	// Shrink with every token in use: nothing free to drain, so the
	// whole reduction becomes debt and the shrink does not block.
	if got := b.Resize(2); got != 2 {
		t.Fatalf("resize = %d, want 2", got)
	}

	// Releasing one token retires debt instead of refilling the pool.
	b.Release(1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := b.Acquire(ctx, 1); err == nil {
		t.Fatal("token available while shrink debt outstanding")
	}

	// The remaining releases retire the last debt and refill to the new
	// capacity: exactly 2 tokens can be taken.
	b.Release(3)
	if got := b.InUse(); got != 0 {
		t.Fatalf("in use = %d, want 0", got)
	}
	got, err = b.Acquire(context.Background(), 8)
	if err != nil || got != 2 {
		t.Fatalf("acquire after refill = %d, %v, want the shrunk capacity 2", got, err)
	}
}

func TestBudgetGrowRetiresDebtFirst(t *testing.T) {
	b := NewBudgetWithMax(4, 8)
	if _, err := b.Acquire(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	b.Resize(1) // 3 tokens of debt, none free
	b.Resize(3) // grow by 2: retires 2 debt, still no free tokens

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := b.Acquire(ctx, 1); err == nil {
		t.Fatal("token available while debt outstanding after partial grow")
	}
	b.Release(4) // retires the last debt, refills 3
	got, err := b.Acquire(context.Background(), 8)
	if err != nil || got != 3 {
		t.Fatalf("acquire = %d, %v, want the grown capacity 3", got, err)
	}
}

func TestBudgetWindowHighWater(t *testing.T) {
	b := NewBudget(4)
	if _, err := b.Acquire(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	b.Release(2)
	if got := b.TakeWindowHighWater(); got != 3 {
		t.Fatalf("window high-water = %d, want 3", got)
	}
	// The window resets to the current in-use level, not zero.
	if got := b.TakeWindowHighWater(); got != 1 {
		t.Fatalf("reset window high-water = %d, want the live in-use 1", got)
	}
}
