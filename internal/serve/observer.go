package serve

import (
	"sync"
	"time"

	"altrun/internal/core"
	"altrun/internal/ids"
)

// altObserver is the pool's always-on wave probe: it turns core's
// per-child events into History statistics — plays on spawn, the τ EWMA
// from spawn→exit latency (winners and too-late losers both measure
// their alternative's cost), failure counts from guard-fails, and the
// kind's realized winner-τ. It is stacked under the flight recorder's
// sampled probe via core.FanoutProbe, so the bandit ranking and the
// PI model learn from every job, not just sampled ones.
//
// One observer serves all of a job's waves: child PIDs are unique per
// spawn, so the open map never collides across waves.
type altObserver struct {
	hist *History
	kind string

	mu   sync.Mutex
	open map[ids.PID]altSpawn
}

type altSpawn struct {
	name string
	at   time.Time
}

var _ core.AltProbe = (*altObserver)(nil)

func newAltObserver(hist *History, kind string) *altObserver {
	return &altObserver{hist: hist, kind: kind, open: make(map[ids.PID]altSpawn, 4)}
}

// ChildSpawned implements core.AltProbe: one play for the alternative.
func (o *altObserver) ChildSpawned(pid ids.PID, name string, now time.Time) {
	o.mu.Lock()
	o.open[pid] = altSpawn{name: name, at: now}
	o.mu.Unlock()
	o.hist.RecordSpawn(o.kind, name)
}

// SetupDone implements core.AltProbe.
func (o *altObserver) SetupDone(time.Time, int) {}

// ChildFault implements core.AltProbe.
func (o *altObserver) ChildFault(ids.PID, int64, time.Time) {}

// ChildExit implements core.AltProbe: resolve the play into the stats.
func (o *altObserver) ChildExit(pid ids.PID, outcome string, now time.Time, _ int64) {
	o.mu.Lock()
	sp, ok := o.open[pid]
	delete(o.open, pid)
	o.mu.Unlock()
	if !ok {
		return
	}
	switch outcome {
	case core.OutcomeWin:
		o.hist.Record(o.kind, sp.name, now.Sub(sp.at))
	case core.OutcomeTooLate:
		o.hist.RecordTooLate(o.kind, sp.name, now.Sub(sp.at))
	case core.OutcomeGuardFail:
		o.hist.RecordFail(o.kind, sp.name)
	case core.OutcomeCancelled:
		// Elimination casualty: the play already counted at spawn (it
		// lost this race), but it is neither a failure nor a τ sample.
	}
}

// Committed implements core.AltProbe.
func (o *altObserver) Committed(ids.PID, time.Time) {}
