package serve

import (
	"reflect"
	"testing"
	"time"
)

func TestHistoryOrderUnknownKeepsDeclarationOrder(t *testing.T) {
	h := NewHistory()
	got := h.Order("sort", []string{"a", "b", "c"})
	if want := []int{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Order with no history = %v, want %v", got, want)
	}
}

func TestHistoryOrderFastestFirst(t *testing.T) {
	h := NewHistory()
	h.Record("sort", "slow", 100*time.Millisecond)
	h.Record("sort", "fast", time.Millisecond)
	got := h.Order("sort", []string{"slow", "unknown", "fast"})
	// fast (1ms) < slow (100ms), never-observed last in declaration order.
	if want := []int{2, 0, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Order = %v, want %v", got, want)
	}
	// Other kinds don't share statistics.
	got = h.Order("other", []string{"slow", "unknown", "fast"})
	if want := []int{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Order for unrelated kind = %v, want %v", got, want)
	}
}

func TestHistoryEWMAAdapts(t *testing.T) {
	h := NewHistory()
	h.Record("q", "x", 10*time.Millisecond)
	// A regression should move the estimate toward the new latency.
	for i := 0; i < 20; i++ {
		h.Record("q", "x", 100*time.Millisecond)
	}
	est, ok := h.Estimate("q", "x")
	if !ok {
		t.Fatal("Estimate lost the entry")
	}
	if est < 90*time.Millisecond {
		t.Fatalf("EWMA = %v after 20 regressed samples, want ≥ 90ms", est)
	}
}
