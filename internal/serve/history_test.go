package serve

import (
	"reflect"
	"testing"
	"time"
)

func TestHistoryOrderUnknownKeepsDeclarationOrder(t *testing.T) {
	h := NewHistory()
	got := h.Order("sort", []string{"a", "b", "c"})
	if want := []int{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Order with no history = %v, want %v", got, want)
	}
}

func TestHistoryOrderFastestFirst(t *testing.T) {
	h := NewHistory()
	h.Record("sort", "slow", 100*time.Millisecond)
	h.Record("sort", "fast", time.Millisecond)
	got := h.Order("sort", []string{"slow", "unknown", "fast"})
	// fast (1ms) < slow (100ms), never-observed last in declaration order.
	if want := []int{2, 0, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Order = %v, want %v", got, want)
	}
	// Other kinds don't share statistics.
	got = h.Order("other", []string{"slow", "unknown", "fast"})
	if want := []int{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Order for unrelated kind = %v, want %v", got, want)
	}
}

func TestHistoryEWMAAdapts(t *testing.T) {
	h := NewHistory()
	h.Record("q", "x", 10*time.Millisecond)
	// A regression should move the estimate toward the new latency.
	for i := 0; i < 20; i++ {
		h.Record("q", "x", 100*time.Millisecond)
	}
	est, ok := h.Estimate("q", "x")
	if !ok {
		t.Fatal("Estimate lost the entry")
	}
	if est < 90*time.Millisecond {
		t.Fatalf("EWMA = %v after 20 regressed samples, want ≥ 90ms", est)
	}
}

func TestHistoryKindLRUEviction(t *testing.T) {
	h := NewHistoryWithCap(2, 4)
	h.Record("k1", "a", time.Millisecond)
	h.Record("k2", "a", time.Millisecond)
	// Touch k1 so k2 is the LRU victim when k3 arrives.
	h.Record("k1", "a", time.Millisecond)
	h.Record("k3", "a", time.Millisecond)

	if got := h.Kinds(); got != 2 {
		t.Fatalf("kinds retained = %d, want 2", got)
	}
	if got := h.Evictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if snap := h.Kind("k2"); snap.Wins != 0 {
		t.Fatalf("evicted kind still has state: %+v", snap)
	}
	if snap := h.Kind("k1"); snap.Wins != 2 {
		t.Fatalf("recently-used kind was evicted: %+v", snap)
	}
}

func TestHistoryAltEviction(t *testing.T) {
	h := NewHistoryWithCap(4, 2)
	h.Record("k", "a", time.Millisecond)
	h.Record("k", "b", time.Millisecond)
	// Touch a so b is the least-recently-touched when c arrives.
	h.Record("k", "a", time.Millisecond)
	h.Record("k", "c", time.Millisecond)

	if snap := h.Kind("k"); snap.Alts != 2 {
		t.Fatalf("alts retained = %d, want 2", snap.Alts)
	}
	if got := h.Evictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if _, ok := h.Estimate("k", "b"); ok {
		t.Fatal("evicted alternative still has an estimate")
	}
	if _, ok := h.Estimate("k", "a"); !ok {
		t.Fatal("recently-touched alternative was evicted")
	}
}

func TestOrderUCBColdKindKeepsDeclarationOrder(t *testing.T) {
	h := NewHistory()
	names := []string{"x", "y", "z"}
	for rep := 0; rep < 3; rep++ {
		order, _ := h.OrderUCB("unknown", names, 0.5)
		for i, got := range order {
			if got != i {
				t.Fatalf("cold order = %v, want declaration order", order)
			}
		}
	}
}

func TestOrderUCBTieBreakDeterministic(t *testing.T) {
	h := NewHistory()
	names := []string{"x", "y", "z"}
	// Identical statistics for every alternative: the stable sort must
	// preserve declaration order on every call.
	for _, n := range names {
		h.RecordSpawn("tie", n)
		h.Record("tie", n, time.Millisecond)
	}
	for rep := 0; rep < 5; rep++ {
		order, _ := h.OrderUCB("tie", names, 0.5)
		for i, got := range order {
			if got != i {
				t.Fatalf("tied order = %v, want declaration order", order)
			}
		}
	}
}

func TestOrderUCBConvergesUnderSkewedStream(t *testing.T) {
	h := NewHistory()
	names := []string{"slowish", "champ", "dud"}
	// champ wins 90% of a skewed stream fast; slowish takes the rest,
	// slower; dud always loses and genuinely fails half its plays.
	for i := 0; i < 50; i++ {
		for _, n := range names {
			h.RecordSpawn("skew", n)
		}
		if i%10 == 0 {
			h.Record("skew", "slowish", 4*time.Millisecond)
		} else {
			h.Record("skew", "champ", time.Millisecond)
		}
		if i%2 == 0 {
			h.RecordFail("skew", "dud")
		}
	}
	order, views := h.OrderUCB("skew", names, 0.5)
	if order[0] != 1 {
		t.Fatalf("order = %v (views %+v), want champ ranked first", order, views)
	}
	if order[2] != 2 {
		t.Fatalf("order = %v, want dud ranked last", order)
	}
}

func TestPredictFoldsRecordedOverhead(t *testing.T) {
	h := NewHistory()
	h.Record("k", "a", time.Millisecond)

	// Before any overhead summary: prediction carries none.
	if _, _, ovh, ok := h.Predict("k", []string{"a"}); !ok || ovh != 0 {
		t.Fatalf("predict = ovh %v ok %v, want 0 overhead before sampling", ovh, ok)
	}

	// A different kind's summary supplies the global fallback.
	h.RecordOverhead("other", 300*time.Microsecond)
	if _, _, ovh, _ := h.Predict("k", []string{"a"}); ovh != 300*time.Microsecond {
		t.Fatalf("fallback overhead = %v, want the global EWMA 300µs", ovh)
	}

	// The kind's own summary takes precedence.
	h.RecordOverhead("k", 100*time.Microsecond)
	if _, _, ovh, _ := h.Predict("k", []string{"a"}); ovh != 100*time.Microsecond {
		t.Fatalf("kind overhead = %v, want 100µs", ovh)
	}
}

func TestNoteSeqSignalStreak(t *testing.T) {
	h := NewHistory()
	if got := h.noteSeqSignal("k", true); got != 1 {
		t.Fatalf("first signal streak = %d, want 1", got)
	}
	if got := h.noteSeqSignal("k", true); got != 2 {
		t.Fatalf("second signal streak = %d, want 2", got)
	}
	if got := h.noteSeqSignal("k", false); got != 0 {
		t.Fatalf("speculate signal should reset the streak, got %d", got)
	}
	if got := h.noteSeqSignal("k", true); got != 1 {
		t.Fatalf("streak after reset = %d, want 1", got)
	}
}
