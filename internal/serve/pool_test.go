package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"altrun/internal/core"
)

func newTestPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := p.Close(ctx); err != nil {
			t.Errorf("pool close: %v", err)
		}
	})
	return p
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition %q not reached within %v", what, d)
}

// sleepAlt succeeds after d, aborting early if the world is cancelled.
func sleepAlt(name string, d time.Duration) core.Alt {
	return core.Alt{Name: name, Body: func(w *core.World) error {
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			if w.Cancelled() {
				return errors.New("cancelled")
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}}
}

// spinAlt never succeeds: it runs until its world is cancelled.
func spinAlt(name string) core.Alt {
	return core.Alt{Name: name, Body: func(w *core.World) error {
		for !w.Cancelled() {
			time.Sleep(time.Millisecond)
		}
		return errors.New("cancelled")
	}}
}

// failAlt fails immediately.
func failAlt(name string) core.Alt {
	return core.Alt{Name: name, Body: func(w *core.World) error {
		return errors.New("deliberate failure")
	}}
}

// TestBudgetEnforced is the acceptance test for the speculation budget:
// 64 concurrent jobs × 4 alternatives against an 8-token pool must
// never hold more than 8 live speculative worlds at once.
func TestBudgetEnforced(t *testing.T) {
	const (
		jobs       = 64
		specTokens = 8
	)
	p := newTestPool(t, Config{
		Workers:    16,
		SpecTokens: specTokens,
		MaxDegree:  4,
		QueueDepth: jobs,
	})
	tickets := make([]*Ticket, 0, jobs)
	for i := 0; i < jobs; i++ {
		alts := make([]core.Alt, 4)
		for a := range alts {
			alts[a] = sleepAlt(fmt.Sprintf("alt-%d", a+1),
				time.Duration(1+(i+a)%4)*time.Millisecond)
		}
		tk, err := p.Submit(Job{Kind: "bench", Name: fmt.Sprintf("job-%d", i), Alts: alts})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, tk := range tickets {
		res, err := tk.Wait(ctx)
		if err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		if res.Status != StatusDone {
			t.Fatalf("job %d: status %v (err %v), want done", i, res.Status, res.Err)
		}
	}
	st := p.Stats()
	if st.SpecHighWater > specTokens {
		t.Fatalf("live speculative worlds peaked at %d, budget is %d tokens",
			st.SpecHighWater, specTokens)
	}
	if st.SpecHighWater == 0 {
		t.Fatal("SpecHighWater = 0; the observer metered nothing")
	}
	if st.JobsCompleted != jobs {
		t.Fatalf("JobsCompleted = %d, want %d", st.JobsCompleted, jobs)
	}
	if st.TokenWaits == 0 {
		t.Fatal("TokenWaits = 0; 64 jobs against 8 tokens should contend")
	}
	eventually(t, 5*time.Second, "all speculative worlds retired", func() bool {
		return p.Stats().SpecLive == 0
	})
}

// TestDeadlineFreesWorlds is the acceptance test for deadline teardown:
// a deadline-killed job must leave zero live worlds behind.
func TestDeadlineFreesWorlds(t *testing.T) {
	p := newTestPool(t, Config{Workers: 2, SpecTokens: 4, QueueDepth: 4})
	tk, err := p.Submit(Job{
		Name:     "stuck",
		Alts:     []core.Alt{spinAlt("s1"), spinAlt("s2"), spinAlt("s3")},
		Deadline: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := tk.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusTimedOut || !errors.Is(res.Err, ErrDeadline) {
		t.Fatalf("result = %v / %v, want timed-out / ErrDeadline", res.Status, res.Err)
	}
	eventually(t, 5*time.Second, "zero live worlds after deadline", func() bool {
		return p.Stats().SpecLive == 0 && p.Runtime().LiveWorlds() == 0
	})
	if got := p.Stats().JobsTimedOut; got != 1 {
		t.Fatalf("JobsTimedOut = %d, want 1", got)
	}
}

func TestCancelFreesWorlds(t *testing.T) {
	p := newTestPool(t, Config{Workers: 2, SpecTokens: 4, QueueDepth: 4})
	tk, err := p.Submit(Job{
		Name: "abandoned",
		Alts: []core.Alt{spinAlt("s1"), spinAlt("s2")},
	})
	if err != nil {
		t.Fatal(err)
	}
	eventually(t, 10*time.Second, "speculation under way", func() bool {
		return p.Stats().SpecLive > 0
	})
	tk.Cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := tk.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusCancelled || !errors.Is(res.Err, ErrCancelled) {
		t.Fatalf("result = %v / %v, want cancelled / ErrCancelled", res.Status, res.Err)
	}
	eventually(t, 5*time.Second, "zero live worlds after cancel", func() bool {
		return p.Stats().SpecLive == 0 && p.Runtime().LiveWorlds() == 0
	})
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, SpecTokens: 2, QueueDepth: 4})
	release := make(chan struct{})
	blocker := core.Alt{Name: "blocker", Body: func(w *core.World) error {
		for {
			select {
			case <-release:
				return nil
			default:
			}
			if w.Cancelled() {
				return errors.New("cancelled")
			}
			time.Sleep(time.Millisecond)
		}
	}}
	first, err := p.Submit(Job{Name: "holds-worker", Alts: []core.Alt{blocker}})
	if err != nil {
		t.Fatal(err)
	}
	ran := make(chan struct{}, 1)
	second, err := p.Submit(Job{Name: "cancelled-in-queue", Alts: []core.Alt{
		{Name: "witness", Body: func(w *core.World) error {
			ran <- struct{}{}
			return nil
		}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	second.Cancel()
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if res, err := first.Wait(ctx); err != nil || res.Status != StatusDone {
		t.Fatalf("first job = %v / %v, want done", res.Status, err)
	}
	res, err := second.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusCancelled {
		t.Fatalf("queued-then-cancelled job status = %v, want cancelled", res.Status)
	}
	select {
	case <-ran:
		t.Fatal("cancelled job's alternative body ran")
	default:
	}
}

// TestLazyWaves: with a one-token budget every wave admits exactly one
// alternative, so a block whose first two alternatives fail commits on
// its third wave — and the waves after a commit are never spawned.
func TestLazyWaves(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, SpecTokens: 1, MaxDegree: 4, QueueDepth: 4})
	tk, err := p.Submit(Job{
		Kind: "lazy",
		Name: "third-time-lucky",
		Alts: []core.Alt{failAlt("a"), failAlt("b"), sleepAlt("c", time.Millisecond)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := tk.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusDone || res.Winner != "c" {
		t.Fatalf("result = %v winner %q (err %v), want done/c", res.Status, res.Winner, res.Err)
	}
	if res.Waves != 3 {
		t.Fatalf("Waves = %d, want 3 (one alternative per token-limited wave)", res.Waves)
	}
	if st := p.Stats(); st.LazyWaves != 2 {
		t.Fatalf("LazyWaves = %d, want 2", st.LazyWaves)
	}
}

// TestPriorityAdmission: with a degree cap of 1, the historically
// fastest alternative runs first and a commit leaves the declared-first
// (but historically losing) alternative unspawned.
func TestPriorityAdmission(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, SpecTokens: 4, QueueDepth: 4})
	p.History().Record("q", "fast", time.Millisecond)
	tk, err := p.Submit(Job{
		Kind:      "q",
		Name:      "learned",
		MaxDegree: 1,
		Alts:      []core.Alt{spinAlt("slow"), sleepAlt("fast", time.Millisecond)},
		Deadline:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := tk.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusDone || res.Winner != "fast" {
		t.Fatalf("result = %v winner %q (err %v), want done/fast", res.Status, res.Winner, res.Err)
	}
	if res.Waves != 1 || res.AltsUnspawned != 1 {
		t.Fatalf("Waves=%d AltsUnspawned=%d, want 1 and 1: 'slow' should never spawn",
			res.Waves, res.AltsUnspawned)
	}
}

func TestAllAlternativesFail(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, SpecTokens: 2, QueueDepth: 4})
	tk, err := p.Submit(Job{Name: "doomed", Alts: []core.Alt{failAlt("a"), failAlt("b")}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := tk.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFailed || !errors.Is(res.Err, core.ErrAllFailed) {
		t.Fatalf("result = %v / %v, want failed / ErrAllFailed", res.Status, res.Err)
	}
}

func TestInitAndExtract(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, SpecTokens: 2, QueueDepth: 4})
	tk, err := p.Submit(Job{
		Name: "arith",
		Init: func(w *core.World) error { return w.WriteUint64(0, 7) },
		Alts: []core.Alt{{Name: "times-six", Body: func(w *core.World) error {
			v, err := w.ReadUint64(0)
			if err != nil {
				return err
			}
			return w.WriteUint64(8, v*6)
		}}},
		Extract: func(w *core.World) (any, error) {
			v, err := w.ReadUint64(8)
			return v, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := tk.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusDone {
		t.Fatalf("status = %v (err %v), want done", res.Status, res.Err)
	}
	if got, ok := res.Value.(uint64); !ok || got != 42 {
		t.Fatalf("Value = %v, want 42: the winner's writes must be visible to Extract", res.Value)
	}
}

func TestQueueFullRejected(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, SpecTokens: 2, QueueDepth: 1})
	release := make(chan struct{})
	blocker := core.Alt{Name: "blocker", Body: func(w *core.World) error {
		for {
			select {
			case <-release:
				return nil
			default:
			}
			if w.Cancelled() {
				return errors.New("cancelled")
			}
			time.Sleep(time.Millisecond)
		}
	}}
	first, err := p.Submit(Job{Name: "running", Alts: []core.Alt{blocker}})
	if err != nil {
		t.Fatal(err)
	}
	eventually(t, 10*time.Second, "first job running", func() bool {
		return first.Status() == StatusRunning
	})
	if _, err := p.Submit(Job{Name: "queued", Alts: []core.Alt{failAlt("x")}}); err != nil {
		t.Fatalf("second submit should queue: %v", err)
	}
	if _, err := p.Submit(Job{Name: "rejected", Alts: []core.Alt{failAlt("x")}}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}
	if st := p.Stats(); st.JobsRejected != 1 {
		t.Fatalf("JobsRejected = %d, want 1", st.JobsRejected)
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := first.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestDrainRejectsNewJobs(t *testing.T) {
	p := newTestPool(t, Config{Workers: 2, SpecTokens: 2, QueueDepth: 4})
	tk, err := p.Submit(Job{Name: "last", Alts: []core.Alt{sleepAlt("a", time.Millisecond)}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	res, ok := tk.Result()
	if !ok || res.Status != StatusDone {
		t.Fatalf("job submitted before drain = %v ok=%v, want done", res.Status, ok)
	}
	if _, err := p.Submit(Job{Name: "late", Alts: []core.Alt{failAlt("x")}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain = %v, want ErrDraining", err)
	}
}

func TestTicketLookupAndForget(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, SpecTokens: 2, QueueDepth: 4})
	tk, err := p.Submit(Job{Name: "lookup", Alts: []core.Alt{sleepAlt("a", time.Millisecond)}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Ticket(tk.ID())
	if err != nil || got.ID() != tk.ID() {
		t.Fatalf("Ticket(%d) = %v, %v", tk.ID(), got, err)
	}
	if _, err := p.Ticket(9999); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Ticket(unknown) err = %v, want ErrUnknownJob", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := tk.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	p.Forget(tk.ID())
	if _, err := p.Ticket(tk.ID()); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Ticket after Forget err = %v, want ErrUnknownJob", err)
	}
}

func TestSubmitRejectsEmptyJob(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, SpecTokens: 1, QueueDepth: 1})
	if _, err := p.Submit(Job{Name: "empty"}); err == nil {
		t.Fatal("submit with no alternatives should fail")
	}
}
