module altrun

go 1.22
