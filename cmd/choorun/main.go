// Command choorun runs a choo program: Kwon-style choice-conjunctive
// procedure groups lowered to alternative blocks racing over a shared
// variable store through the multiple-worlds message layer.
//
// Usage:
//
//	choorun prog.choo            # run, print output and final variables
//	choorun -oracle prog.choo    # also verify against the sequential oracle
//	choorun -degree 1 prog.choo  # sequential fall-through (one alt at a time)
//	echo 'x := 1;' | choorun -   # read the program from stdin
//
// With -oracle the result must match one of the program's sequential
// outcomes (every resolution of every choice, enumerated); a mismatch
// exits nonzero — it would mean the concurrent execution is observably
// different from every sequential one, breaking the paper's
// transparency claim.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"altrun/apps/choo"
	"altrun/internal/core"
	"altrun/internal/serve"
)

func main() {
	var (
		oracle  = flag.Bool("oracle", false, "verify the result against the sequential oracle")
		degree  = flag.Int("degree", 0, "max concurrent procedures per group (0 = pool default, 1 = sequential)")
		timeout = flag.Duration("timeout", 30*time.Second, "end-to-end deadline")
		stats   = flag.Bool("stats", false, "print message-layer counters (splits, eliminations)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: choorun [-oracle] [-degree n] prog.choo   (use - for stdin)")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *oracle, *degree, *timeout, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "choorun:", err)
		os.Exit(1)
	}
}

func run(path string, checkOracle bool, degree int, timeout time.Duration, stats bool) error {
	var src []byte
	var err error
	if path == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	prog, err := choo.Parse(string(src))
	if err != nil {
		return err
	}

	rt := core.New(core.Config{})
	pool, err := serve.NewPool(serve.Config{Workers: 1, SpecTokens: 8, Runtime: rt})
	if err != nil {
		return err
	}
	defer pool.Drain(context.Background())

	before := rt.MsgStats()
	tk, err := pool.Submit(choo.CompileJob(path, prog, choo.JobOptions{
		MaxDegree: degree,
		Deadline:  timeout,
	}))
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout+time.Second)
	defer cancel()
	res, err := tk.Wait(ctx)
	if err != nil {
		return err
	}
	if res.Status != serve.StatusDone {
		return fmt.Errorf("%v: %w", res.Status, res.Err)
	}
	out := res.Value.(choo.Result)

	for _, line := range out.Prints {
		fmt.Println(line)
	}
	names := make([]string, 0, len(out.Vars))
	for n := range out.Vars {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%s = %d\n", n, out.Vars[n])
	}
	if res.Winner != "" && res.Winner != "main" {
		fmt.Printf("winner: %s (in %v)\n", res.Winner, res.Elapsed.Round(time.Microsecond))
	}
	if stats {
		after := rt.MsgStats()
		fmt.Printf("messages: sent=%d accepted=%d ignored=%d splits=%d\n",
			after.Sent-before.Sent, after.Accepted-before.Accepted,
			after.Ignored-before.Ignored, after.Splits-before.Splits)
	}

	if checkOracle {
		outs, err := choo.Oracle(prog, 0)
		if err != nil {
			return fmt.Errorf("oracle: %w", err)
		}
		for _, o := range outs {
			if o.Matches(out.Vars, out.Prints) {
				fmt.Printf("oracle: result matches sequential outcome %v (of %d)\n", o.Winners, len(outs))
				return nil
			}
		}
		return fmt.Errorf("oracle: result matches NONE of %d sequential outcomes", len(outs))
	}
	return nil
}
