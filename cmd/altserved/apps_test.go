package main

import (
	"encoding/json"
	"net/http"
	"os"
	"testing"

	appchoo "altrun/apps/choo"
)

// TestSubmitStmAndWait drives the contended-store workload through the
// HTTP API: the extracted result must name the committed alternative
// and carry the final sink-page image, and the contention must show up
// on /metrics as receiver splits.
func TestSubmitStmAndWait(t *testing.T) {
	ts, _ := testServer(t)
	resp, v := postJSON(t, ts.URL+"/jobs?wait=1", submitRequest{
		Kind: "stm",
		Keys: 6, Alts: 4, Ops: 8, ReadFrac: 0.4, Seed: 99,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %+v", resp.StatusCode, v)
	}
	if v.Status != "done" {
		t.Fatalf("job status = %q (error %q), want done", v.Status, v.Error)
	}
	val, ok := v.Value.(map[string]any)
	if !ok {
		t.Fatalf("value = %v (%T)", v.Value, v.Value)
	}
	winner, ok := val["winner"].(float64)
	if !ok || int(winner) != v.WinnerIndex {
		t.Fatalf("store winner %v, block winner %d", val["winner"], v.WinnerIndex)
	}
	if pages, ok := val["pages"].([]any); !ok || len(pages) != 6 {
		t.Fatalf("pages = %v, want 6", val["pages"])
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m metricsView
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Messages.Splits == 0 {
		t.Fatalf("metrics show no receiver splits after a contended stm job: %+v", m.Messages)
	}
}

// TestSubmitChooExampleMatchesOracle is the end-to-end acceptance path:
// a checked-in example program submitted over HTTP, its committed
// store state and prints matching one of the oracle's sequential
// outcomes.
func TestSubmitChooExampleMatchesOracle(t *testing.T) {
	src, err := os.ReadFile("../../examples/choo/account.choo")
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := testServer(t)
	resp, v := postJSON(t, ts.URL+"/jobs?wait=1", submitRequest{
		Kind:    "choo",
		Program: string(src),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %+v", resp.StatusCode, v)
	}
	if v.Status != "done" {
		t.Fatalf("job status = %q (error %q), want done", v.Status, v.Error)
	}
	val, ok := v.Value.(map[string]any)
	if !ok {
		t.Fatalf("value = %v (%T)", v.Value, v.Value)
	}
	vars := map[string]int64{}
	for name, x := range val["vars"].(map[string]any) {
		vars[name] = int64(x.(float64))
	}
	var prints []string
	if raw, isList := val["prints"].([]any); isList {
		for _, p := range raw {
			prints = append(prints, p.(string))
		}
	}

	prog, err := appchoo.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	outs, err := appchoo.Oracle(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if o.Matches(vars, prints) {
			if v.Winner == "" {
				t.Fatalf("done choo job reports no winner: %+v", v)
			}
			return
		}
	}
	t.Fatalf("served result vars=%v prints=%v matches none of %d sequential outcomes %+v",
		vars, prints, len(outs), outs)
}

func TestSubmitChooBadProgram(t *testing.T) {
	ts, _ := testServer(t)
	for _, req := range []submitRequest{
		{Kind: "choo"},                              // no program
		{Kind: "choo", Program: "x = 1;"},           // lex error
		{Kind: "choo", Program: "choo(a, b);"},      // undeclared procs
		{Kind: "choo", Program: "proc p { x := 1;"}, // unclosed body
	} {
		resp, v := postJSON(t, ts.URL+"/jobs", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("program %q: status = %d, body %+v", req.Program, resp.StatusCode, v)
		}
	}
}
