package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"altrun/internal/obs"
)

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestDebugBlocksEndpoint: after one job at sampling rate 1, the
// flight recorder's HTTP surface must show the block — list, single
// timeline with a reconciling decomposition, and a Chrome trace with
// the expected span names.
func TestDebugBlocksEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	resp, v := postJSON(t, ts.URL+"/jobs?wait=1", submitRequest{
		Kind:    "sort",
		Input:   []int{9, 4, 7, 1},
		TraceID: "stitch-1",
	})
	if resp.StatusCode != http.StatusOK || v.Status != "done" {
		t.Fatalf("job: %d %+v", resp.StatusCode, v)
	}

	code, body := getBody(t, ts.URL+"/debug/blocks")
	if code != http.StatusOK {
		t.Fatalf("/debug/blocks = %d: %s", code, body)
	}
	var list struct {
		Stats  obs.RecorderStats `json:"stats"`
		Blocks []obs.Timeline    `json:"blocks"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("list: %v\n%s", err, body)
	}
	if len(list.Blocks) < 1 {
		t.Fatal("no blocks listed after a sampled job")
	}
	tl := list.Blocks[0]
	if tl.ID != v.ID || tl.Status != "done" || tl.TraceID != "stitch-1" {
		t.Fatalf("listed block = %+v, job %d", tl, v.ID)
	}
	if sum := tl.Setup + tl.Runtime + tl.Selection + tl.Sched; sum != tl.Wall {
		t.Fatalf("decomposition does not reconcile: %+v", tl)
	}

	code, body = getBody(t, fmt.Sprintf("%s/debug/blocks/%d", ts.URL, v.ID))
	if code != http.StatusOK {
		t.Fatalf("/debug/blocks/%d = %d", v.ID, code)
	}
	var single obs.Timeline
	if err := json.Unmarshal(body, &single); err != nil {
		t.Fatal(err)
	}
	if single.ID != v.ID || single.Spawns == 0 {
		t.Fatalf("single timeline = %+v", single)
	}

	code, body = getBody(t, fmt.Sprintf("%s/debug/blocks/%d/trace", ts.URL, v.ID))
	if code != http.StatusOK {
		t.Fatalf("trace = %d", code)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &trace); err != nil {
		t.Fatalf("chrome trace not JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range trace.TraceEvents {
		names[e.Name] = true
	}
	for _, want := range []string{"setup", "runtime", "selection", "commit"} {
		if !names[want] {
			t.Fatalf("trace missing %q span; have %v", want, names)
		}
	}

	if code, _ := getBody(t, ts.URL+"/debug/blocks/999999"); code != http.StatusNotFound {
		t.Fatalf("unknown block = %d, want 404", code)
	}
}

// TestMetricsPromFormat: ?format=prom renders the Prometheus text
// exposition, including the satellite counters (selection, trace
// drops) and the recorder's histograms.
func TestMetricsPromFormat(t *testing.T) {
	ts, _ := testServer(t)
	if resp, v := postJSON(t, ts.URL+"/jobs?wait=1", submitRequest{
		Kind: "sort", Input: []int{3, 1, 2},
	}); resp.StatusCode != http.StatusOK || v.Status != "done" {
		t.Fatalf("job: %d %+v", resp.StatusCode, v)
	}
	code, body := getBody(t, ts.URL+"/metrics?format=prom")
	if code != http.StatusOK {
		t.Fatalf("prom metrics = %d", code)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE altrun_jobs_completed_total counter",
		"altrun_jobs_completed_total 1",
		"altrun_sel_resolutions_total",
		"altrun_sel_eliminations_total",
		"altrun_trace_dropped_total",
		"altrun_obs_blocks_sampled_total 1",
		"# TYPE altrun_obs_block_wall_seconds histogram",
		"altrun_obs_setup_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsJSONIncludesObs: the JSON view carries the recorder
// aggregates (and the trace/selection counters it always had).
func TestMetricsJSONIncludesObs(t *testing.T) {
	ts, _ := testServer(t)
	if resp, v := postJSON(t, ts.URL+"/jobs?wait=1", submitRequest{
		Kind: "sort", Input: []int{2, 1},
	}); resp.StatusCode != http.StatusOK || v.Status != "done" {
		t.Fatalf("job: %d %+v", resp.StatusCode, v)
	}
	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	var m metricsView
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, body)
	}
	if m.Obs == nil || m.Obs.BlocksSampled != 1 {
		t.Fatalf("obs stats missing from /metrics: %+v", m.Obs)
	}
	if m.Obs.Wall.Count != 1 {
		t.Fatalf("wall histogram empty: %+v", m.Obs.Wall)
	}
}
