// Command altserved is the admission-controlled alternative-block
// daemon: an HTTP front end over serve.Pool that accepts recovery-block
// and Prolog-query jobs, runs them under the speculation budget, and
// drains gracefully on SIGTERM.
//
//	altserved -addr :8080 -workers 8 -spec-tokens 16
//
//	curl -s localhost:8080/jobs?wait=1 -d '{"kind":"sort","input":[5,3,1]}'
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"altrun/internal/core"
	"altrun/internal/ids"
	"altrun/internal/obs"
	"altrun/internal/serve"
	"altrun/internal/trace"
)

// traceWriter returns an OnComplete hook that dumps each sampled
// block's Chrome trace into dir as block-<id>.trace.json (Perfetto /
// chrome://tracing loadable). Failures are logged, never fatal — the
// recorder must not take the daemon down.
func traceWriter(dir string) func(*obs.Timeline) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Printf("obs: cannot create trace dir %s: %v", dir, err)
		return nil
	}
	return func(tl *obs.Timeline) {
		raw, err := tl.ChromeTrace()
		if err != nil {
			log.Printf("obs: trace for block %d: %v", tl.ID, err)
			return
		}
		path := filepath.Join(dir, fmt.Sprintf("block-%d.trace.json", tl.ID))
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			log.Printf("obs: write %s: %v", path, err)
		}
	}
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent jobs (0 = max(4, GOMAXPROCS))")
		specTokens   = flag.Int("spec-tokens", 0, "speculation budget: max live speculative worlds (0 = 2×workers)")
		maxDegree    = flag.Int("max-degree", 4, "max alternatives raced at once per job")
		queueDepth   = flag.Int("queue", 256, "admission queue depth")
		deadline     = flag.Duration("deadline", 30*time.Second, "default per-job deadline (0 = none)")
		traceCap     = flag.Int("trace-cap", trace.DefaultLogCap, "trace ring-buffer capacity (events)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown")
		node         = flag.Int("node", 0, "this daemon's node id in the peer group (0 = single-node)")
		peers        = flag.String("peers", "", `static peer group as "1=host:port,2=host:port,..." (must include this node)`)
		join         = flag.String("join", "", `membership seeds as "1=host:port,..." — join the group dynamically instead of listing every peer`)
		clusterAddr  = flag.String("cluster-addr", "127.0.0.1:0", "cluster transport listen address (used with -join; -peers carries its own)")
		gossipIval   = flag.Duration("gossip-interval", 250*time.Millisecond, "membership probe/gossip period")
		suspMult     = flag.Int("suspicion-mult", 5, "suspicion timeout, as a multiple of the gossip interval")
		groupCommit  = flag.Bool("group-commit", true, "coalesce concurrent job commits into batched quorum rounds")
		obsRate      = flag.Int("obs-rate", obs.DefaultSampleRate, "flight recorder sampling: record 1 in N blocks (0 = off)")
		obsKeep      = flag.Int("obs-keep", obs.DefaultKeep, "flight recorder retention: recent timelines kept for /debug/blocks")
		obsDir       = flag.String("obs-dir", "", "write each sampled block's Chrome trace JSON into this directory")

		adapt         = flag.Bool("adapt", false, "adaptive speculation controller: per-job sequential/speculate decisions, degree, bandit ordering, budget resizing")
		adaptPI       = flag.Float64("adapt-pi-threshold", 1.0, "predicted-PI floor below which a job runs sequentially")
		adaptUCB      = flag.Float64("adapt-ucb", 0.5, "bandit exploration constant for spawn ordering (0 = pure exploitation)")
		adaptMinWins  = flag.Int64("adapt-min-wins", 5, "committed blocks a kind needs before sequential execution is allowed")
		adaptExplore  = flag.Int("adapt-explore-every", 64, "force full-degree speculation every Nth decision per kind (0 = never)")
		adaptResize   = flag.Duration("adapt-resize-interval", 2*time.Second, "how often the speculation token budget is reconsidered (0 = fixed)")
		adaptMaxToken = flag.Int("adapt-max-tokens", 0, "upper bound for budget resizing (0 = 4×spec-tokens)")
	)
	flag.Parse()
	var cluster *clusterState
	if *peers != "" && *join != "" {
		fmt.Fprintln(os.Stderr, "altserved: -peers and -join are mutually exclusive (static group vs dynamic admission)")
		os.Exit(1)
	}
	if *peers != "" || *join != "" {
		if *node <= 0 {
			fmt.Fprintln(os.Stderr, "altserved: -peers/-join require -node")
			os.Exit(1)
		}
		opts := clusterOptions{
			node:           ids.NodeID(*node),
			listen:         *clusterAddr,
			gossipInterval: *gossipIval,
			suspicionMult:  *suspMult,
		}
		var err error
		if *peers != "" {
			if opts.peers, err = parsePeers(*peers); err != nil {
				fmt.Fprintln(os.Stderr, "altserved:", err)
				os.Exit(1)
			}
		} else {
			if opts.join, err = parsePeers(*join); err != nil {
				fmt.Fprintln(os.Stderr, "altserved:", err)
				os.Exit(1)
			}
			if _, self := opts.join[opts.node]; self {
				fmt.Fprintln(os.Stderr, "altserved: -join seeds must not include this node")
				os.Exit(1)
			}
		}
		cluster, err = newClusterState(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "altserved:", err)
			os.Exit(1)
		}
		cluster.batch = *groupCommit
	}
	var rec *obs.Recorder
	if *obsRate > 0 {
		rcfg := obs.Config{SampleRate: *obsRate, Keep: *obsKeep}
		if *obsDir != "" {
			rcfg.OnComplete = traceWriter(*obsDir)
		}
		rec = obs.NewRecorder(rcfg)
	}
	cfg := serve.Config{
		Workers:         *workers,
		SpecTokens:      *specTokens,
		MaxDegree:       *maxDegree,
		QueueDepth:      *queueDepth,
		DefaultDeadline: *deadline,
		Runtime:         core.New(core.Config{Trace: true, TraceCap: *traceCap}),
		Recorder:        rec,
		Adapt: serve.AdaptConfig{
			Enabled:        *adapt,
			PIThreshold:    *adaptPI,
			UCBExploration: *adaptUCB,
			MinKindWins:    *adaptMinWins,
			ExploreEvery:   *adaptExplore,
			ResizeInterval: *adaptResize,
			MaxTokens:      *adaptMaxToken,
		},
	}
	if cluster != nil {
		cfg.NewClaim = cluster.newClaim
	}
	if err := run(*addr, cfg, cluster, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "altserved:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg serve.Config, cluster *clusterState, drainTimeout time.Duration) error {
	pool, err := serve.NewPool(cfg)
	if err != nil {
		return err
	}
	if cluster != nil {
		cluster.start(pool)
		defer cluster.close()
		log.Printf("altserved node %d in peer group %v (cluster addr %s, quorum %d)",
			cluster.node, cluster.members, cluster.tcp.Addr(), len(cluster.members)/2+1)
	}
	srv := &http.Server{
		Addr:    addr,
		Handler: newHandler(pool, cluster, cfg.Recorder),
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("altserved listening on %s (workers=%d spec-tokens=%d max-degree=%d queue=%d)",
			addr, pool.Stats().Workers, pool.Stats().SpecTokens, pool.Stats().MaxDegree, pool.Stats().QueueDepth)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, then let queued and
	// in-flight jobs finish (bounded by drainTimeout).
	log.Printf("altserved draining (timeout %v)", drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := pool.Drain(shutdownCtx); err != nil {
		// Out of patience: cancel what's left so worlds are freed.
		log.Printf("drain incomplete (%v); cancelling remaining jobs", err)
		killCtx, kcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer kcancel()
		return pool.Close(killCtx)
	}
	st := pool.Stats()
	log.Printf("altserved drained: %d completed, %d failed, %d timed out, %d cancelled (spec high-water %d/%d)",
		st.JobsCompleted, st.JobsFailed, st.JobsTimedOut, st.JobsCancelled, st.SpecHighWater, st.SpecTokens)
	return nil
}
