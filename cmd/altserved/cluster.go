package main

import (
	"encoding/json"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	appchoo "altrun/apps/choo"
	appstm "altrun/apps/stm"
	"altrun/internal/checkpoint"
	"altrun/internal/consensus"
	"altrun/internal/core"
	"altrun/internal/ids"
	"altrun/internal/mem"
	"altrun/internal/membership"
	"altrun/internal/page"
	"altrun/internal/serve"
	istm "altrun/internal/stm"
	"altrun/internal/trace"
	"altrun/internal/transport"

	// One registration point for every protocol message's wire codec.
	_ "altrun/internal/transport/codec"
)

// The daemon's peer group: each altserved node runs a TCP transport
// endpoint, a consensus voter, a SWIM membership agent, and an rfork
// receiver. A job submitted to any node commits through a majority of
// the group's voters (§3.2.1: "the synchronization is set up as a
// majority consensus decision"), and a busy node can rfork a job —
// shipped as a checkpoint image — onto a peer chosen by
// consistent-hash placement over the live membership view, biased by
// the load hints the agents gossip on probe traffic.
//
// Wire-codec tags 200/201 were the polled load-query protocol, retired
// now that occupancy rides the membership gossip; they stay reserved so
// a future message type can't collide with old peers on the wire.

const (
	// rfork delta shipping writes each forwarded request into a
	// fixed-size per-peer arena so successive jobs diff page-by-page
	// against a peer-cached base image; requests that outgrow the arena
	// fall back to a one-off legacy full ship.
	rforkPageSize   = 512
	rforkArenaSize  = 16 << 10
	rforkLineage    = "rfork/json"
	rforkJobTimeout = 10 * time.Second
)

// peerSpec maps node IDs to cluster listen addresses ("1=host:port,...").
type peerSpec map[ids.NodeID]string

func parsePeers(s string) (peerSpec, error) {
	spec := peerSpec{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("peer %q: want <node>=<host:port>", part)
		}
		n, err := strconv.ParseInt(strings.TrimSpace(id), 10, 32)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("peer %q: bad node id", part)
		}
		spec[ids.NodeID(n)] = strings.TrimSpace(addr)
	}
	if len(spec) == 0 {
		return nil, fmt.Errorf("empty peer spec %q", s)
	}
	return spec, nil
}

// clusterState is one daemon's membership in the peer group.
type clusterState struct {
	node ids.NodeID
	tcp  *transport.TCP
	// membersMu guards members, which tracks the live membership view
	// once the agent is running (the static spec until then).
	membersMu sync.Mutex
	members   []ids.NodeID
	voter     *consensus.Voter
	ccfg      consensus.Config
	nc        *trace.NetCounters

	// SWIM membership: static peers seed the table on the -peers
	// compatibility path; seeds drive the -join handshake. The agent is
	// started by start() (its load hint reads the pool).
	agent          *membership.Agent
	mc             *membership.Counters
	staticPeers    []membership.Peer
	seedPeers      []membership.Peer
	gossipInterval time.Duration
	suspicionMult  int

	// Backpressure-aware rfork placement: per-peer inflight window,
	// reset whenever a fresher gossiped load hint arrives.
	winMu   sync.Mutex
	windows map[ids.NodeID]*peerWindow

	rforkFallbacks atomic.Int64 // rfork requests that ran locally instead

	// batch selects the group-commit path: claims route through the
	// per-node coalescer (pipelined batched ballots) instead of running
	// one quorum round each. distbench A/Bs the two; production
	// defaults to batched.
	batch     bool
	coalescer *consensus.Coalescer

	// Delta checkpoint shipping for rfork.
	shipper  *checkpoint.Shipper
	receiver *checkpoint.Receiver
	arenaMu  sync.Mutex
	arenas   map[ids.NodeID]*rforkArena

	pool *serve.Pool // wired by start()

	ballots   atomic.Int64
	commits   atomic.Int64
	rforksIn  atomic.Int64
	rforksOut atomic.Int64
	rforkSeq  atomic.Int64

	rforkSvc transport.Handle
	ctlSvc   transport.Handle
}

// rforkArena is the persistent per-destination capture space: each
// forwarded request overwrites the previous one, so the space's
// accumulated dirty-page set bounds the delta diff.
type rforkArena struct {
	space   *mem.AddressSpace
	prevLen int64
	dirty   []int64 // reused DirtyPageList buffer
}

// clusterOptions selects how a daemon finds its peer group: a full
// static spec (-peers, every member known up front) or a seed list
// (-join, dynamic admission through the membership gossip).
type clusterOptions struct {
	node           ids.NodeID
	peers          peerSpec // static group; nil on the join path
	join           peerSpec // seed addresses; nil on the static path
	listen         string   // cluster listen address (join path; static takes it from peers)
	gossipInterval time.Duration
	suspicionMult  int
}

// newClusterState brings up the transport endpoint and voter. On the
// static path peers must include this node's own listen address; on the
// join path only the seeds are dialed and everyone else is admitted
// dynamically as the gossip reveals them.
func newClusterState(opts clusterOptions) (*clusterState, error) {
	node := opts.node
	listen := opts.listen
	if opts.peers != nil {
		l, ok := opts.peers[node]
		if !ok {
			return nil, fmt.Errorf("peer spec has no entry for this node (%d)", node)
		}
		listen = l
	}
	nc := &trace.NetCounters{}
	tcp, err := transport.NewTCP(transport.TCPOptions{Node: node, Listen: listen, Counters: nc})
	if err != nil {
		return nil, fmt.Errorf("cluster listen: %w", err)
	}
	var members []ids.NodeID
	var static, seeds []membership.Peer
	if opts.peers != nil {
		for id, addr := range opts.peers {
			members = append(members, id)
			static = append(static, membership.Peer{ID: id, Addr: addr})
			if id != node {
				tcp.AddPeer(id, addr)
			}
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		sort.Slice(static, func(i, j int) bool { return static[i].ID < static[j].ID })
	} else {
		// Until the join handshake completes, this node is a group of
		// one; the first ViewUpdate re-derives the real quorum.
		members = []ids.NodeID{node}
		for id, addr := range opts.join {
			seeds = append(seeds, membership.Peer{ID: id, Addr: addr})
			tcp.AddPeer(id, addr)
		}
		sort.Slice(seeds, func(i, j int) bool { return seeds[i].ID < seeds[j].ID })
	}
	c := clusterFromTransport(tcp, members, nc)
	c.staticPeers = static
	c.seedPeers = seeds
	c.gossipInterval = opts.gossipInterval
	c.suspicionMult = opts.suspicionMult
	return c, nil
}

// clusterFromTransport wraps an already-meshed transport endpoint (the
// in-process test path; production goes through newClusterState).
func clusterFromTransport(tcp *transport.TCP, members []ids.NodeID, nc *trace.NetCounters) *clusterState {
	ccfg := consensus.Config{Net: nc}
	static := make([]membership.Peer, len(members))
	for i, id := range members {
		static[i] = membership.Peer{ID: id}
	}
	return &clusterState{
		node:        tcp.ID(),
		tcp:         tcp,
		voter:       consensus.StartVoter(tcp, ""),
		members:     members,
		ccfg:        ccfg,
		nc:          nc,
		mc:          &membership.Counters{},
		staticPeers: static,
		windows:     make(map[ids.NodeID]*peerWindow),
		batch:       true,
		coalescer:   consensus.StartCoalescer(tcp, members, "", ccfg),
		shipper:     checkpoint.NewShipper(tcp, nc),
		receiver:    checkpoint.NewReceiver(tcp, nc, 0),
		arenas:      make(map[ids.NodeID]*rforkArena),
	}
}

// start wires the pool in and launches the membership agent plus the
// load, rfork, and ship-control services. The agent starts here rather
// than in the constructor because its gossiped load hint reads the
// pool.
func (c *clusterState) start(pool *serve.Pool) {
	c.pool = pool
	c.agent = membership.Start(c.tcp, membership.Config{
		SelfAddr:      c.tcp.Addr(),
		Static:        c.staticPeers,
		Join:          c.seedPeers,
		ProbeInterval: c.gossipInterval,
		SuspicionMult: c.suspicionMult,
		Load: func() int32 {
			st := pool.Stats()
			return int32(st.Running + st.Queued)
		},
		OnView: c.onView,
		OnPeer: func(id ids.NodeID, addr string) {
			if id != c.node && addr != "" {
				c.tcp.AddPeer(id, addr)
			}
		},
		Counters: c.mc,
		Logf:     log.Printf,
	})
	c.rforkSvc = c.tcp.Spawn("rfork-svc", c.serveRFork)
	c.ctlSvc = c.tcp.Spawn("rfork-ctl", func(p transport.Proc) {
		checkpoint.ServeNaks(p, c.tcp.Bind(checkpoint.RForkCtlPort), c.shipper)
	})
}

// onView is the epoch-fenced reconfiguration hook, called from the
// membership agent whenever the view changes: fence the voter, hand the
// coalescer its new quorum, and tear down shipping state toward peers
// that left the view (their cached bases and sessions are dead weight —
// a rejoin restarts each lineage with a fresh full base).
func (c *clusterState) onView(v membership.View) {
	c.voter.SetEpoch(v.Epoch)
	c.coalescer.SetView(v.Epoch, v.Members)
	inView := make(map[ids.NodeID]bool, len(v.Members))
	for _, id := range v.Members {
		inView[id] = true
	}
	c.membersMu.Lock()
	old := c.members
	c.members = append([]ids.NodeID(nil), v.Members...)
	sort.Slice(c.members, func(i, j int) bool { return c.members[i] < c.members[j] })
	c.membersMu.Unlock()
	for _, id := range old {
		if inView[id] || id == c.node {
			continue
		}
		if n := c.shipper.DropPeer(id); n > 0 {
			log.Printf("cluster: dropped %d rfork session(s) toward departed node %d", n, id)
		}
		c.receiver.InvalidateNode(id)
		c.arenaMu.Lock()
		delete(c.arenas, id)
		c.arenaMu.Unlock()
		c.winMu.Lock()
		delete(c.windows, id)
		c.winMu.Unlock()
	}
}

// membersSnapshot returns the current view's member list.
func (c *clusterState) membersSnapshot() []ids.NodeID {
	c.membersMu.Lock()
	defer c.membersMu.Unlock()
	return append([]ids.NodeID(nil), c.members...)
}

func (c *clusterState) close() {
	// Tell peers the lineage's base dies with us: a restarted daemon
	// starts a fresh epoch, and a stale cached base must not satisfy it.
	c.shipper.InvalidateLineage(rforkLineage)
	if c.agent != nil {
		// Voluntary departure: peers drop us on the Left update instead
		// of waiting out a suspicion timeout.
		c.agent.Leave()
		c.agent.Stop()
	}
	if c.rforkSvc != nil {
		c.rforkSvc.Kill()
	}
	if c.ctlSvc != nil {
		c.ctlSvc.Kill()
	}
	c.coalescer.Stop()
	c.voter.Stop()
	c.tcp.Close()
}

// newClaim is the pool's commit arbiter: each job gets its own
// consensus key, so the block commits only once a quorum of the peer
// group has granted it. Batched mode routes the claim through the
// node's coalescer — many concurrent jobs share one quorum round.
func (c *clusterState) newClaim(job serve.Job, id uint64) core.ClaimFunc {
	key := fmt.Sprintf("job/%d/%d", c.node, id)
	if c.batch {
		return func(w *core.World) bool {
			c.ballots.Add(1)
			won := c.coalescer.Claim(transport.Background(), key, w.PID()).Won
			if won {
				c.commits.Add(1)
			}
			return won
		}
	}
	cl := consensus.NewClaimant(key, c.tcp, c.membersSnapshot(), "", c.ccfg)
	return func(w *core.World) bool {
		c.ballots.Add(1)
		won := cl.Claim(transport.Background(), w.PID()).Won
		if won {
			c.commits.Add(1)
		}
		return won
	}
}

// serveRFork receives shipped jobs: a checkpoint image whose address
// space holds the JSON submit request. Images arrive as legacy full
// ships ([]byte), delta-shipping full bases, or deltas against a cached
// base — the Receiver reconstructs all three (NAKing deltas whose base
// it lacks). The request is re-read from the restored space and the job
// admitted to the local pool under this node's own consensus key.
func (c *clusterState) serveRFork(p transport.Proc) {
	inbox := c.tcp.Bind(checkpoint.RForkPort)
	for {
		env, ok := inbox.Recv(p)
		if !ok {
			return
		}
		// Typed rfork payloads (wire tags 202/203) carry the job spec
		// itself; the executing node rebuilds the job from it directly,
		// skipping the checkpoint-image restore the JSON path needs.
		switch spec := env.Payload.(type) {
		case istm.TxnSpec:
			if _, err := c.pool.Submit(appstm.JobFromSpec(spec)); err == nil {
				c.rforksIn.Add(1)
			}
			continue
		case appchoo.ProgSpec:
			job, err := spec.Job()
			if err != nil {
				continue
			}
			if _, err := c.pool.Submit(job); err == nil {
				c.rforksIn.Add(1)
			}
			continue
		}
		img, ok := c.receiver.Handle(env)
		if !ok {
			continue
		}
		req, err := requestFromImage(img)
		if err != nil {
			continue
		}
		job, err := buildJob(req)
		if err != nil {
			continue
		}
		if _, err := c.pool.Submit(job); err == nil {
			c.rforksIn.Add(1)
		}
	}
}

// peerWindow is the backpressure state for one rfork destination: sent
// counts jobs shipped since the peer's last load hint, so placement
// stops piling onto a peer whose gossiped occupancy is going stale.
type peerWindow struct {
	seq  int64 // gossip seq of the load hint the window was reset at
	sent int   // rforks shipped since that hint
}

// ringTarget picks an rfork destination by consistent-hashing the job
// lineage onto the membership ring — O(1) against gossiped state,
// where the old leastLoaded ran a query round-trip to every peer for
// every rfork. Keying by kind gives each lineage a stable home, which
// is exactly the affinity the delta shipper's cached bases want.
// Saturated or suspected owners are skipped in ring order; no
// admissible peer means run locally.
func (c *clusterState) ringTarget(kind string) (ids.NodeID, bool) {
	if c.agent == nil {
		return 0, false
	}
	st := c.pool.Stats()
	capacity := st.Workers + st.QueueDepth
	to, ok := c.agent.Pick("rfork/"+kind, func(m membership.Member) bool {
		if m.Node == c.node {
			return false
		}
		return c.admitWindow(m, capacity)
	})
	if !ok {
		c.rforkFallbacks.Add(1)
	}
	return to, ok
}

// admitWindow charges one rfork against the peer's inflight window:
// its gossiped load plus everything we shipped since that hint must
// stay under capacity. A fresher hint (higher gossip seq) resets the
// locally-charged count — the hint already covers what arrived.
func (c *clusterState) admitWindow(m membership.Member, capacity int) bool {
	c.winMu.Lock()
	defer c.winMu.Unlock()
	w := c.windows[m.Node]
	if w == nil {
		w = &peerWindow{}
		c.windows[m.Node] = w
	}
	if m.Seq > w.seq {
		w.seq = m.Seq
		w.sent = 0
	}
	if int(m.Load)+w.sent >= capacity {
		return false
	}
	w.sent++
	return true
}

// rfork ships a submit request to a peer as a checkpoint image: the
// JSON request is written into an address space, captured, and sent
// over the transport exactly like a migrating process (§5.1.2's rfork).
func (c *clusterState) rfork(to ids.NodeID, id uint64, req submitRequest) error {
	// Typed fast path: stm and choo jobs have first-class spec codecs,
	// so the spec itself crosses the wire — no image capture, no arena,
	// no JSON. (Specs carry no TraceID; cross-node timeline stitching
	// stays a JSON-path feature.)
	switch req.Kind {
	case "stm":
		if !c.tcp.Send(transport.Addr{Node: to, Port: checkpoint.RForkPort}, stmSpecFrom(req)) {
			return fmt.Errorf("rfork: typed send to node %d failed", to)
		}
		c.rforksOut.Add(1)
		return nil
	case "choo":
		if !c.tcp.Send(transport.Addr{Node: to, Port: checkpoint.RForkPort}, chooSpecFrom(req)) {
			return fmt.Errorf("rfork: typed send to node %d failed", to)
		}
		c.rforksOut.Add(1)
		return nil
	}
	// Stamp the stitch ID before the request leaves this node: the
	// receiving daemon's flight recorder tags its timeline with it, so
	// the origin and the executing node's spans join on one key.
	if req.TraceID == "" {
		req.TraceID = fmt.Sprintf("n%d-r%d", c.node, c.rforkSeq.Add(1))
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	control := map[string]int64{"len": int64(len(body))}
	if len(body) > rforkArenaSize {
		// Oversized request: one-off legacy full ship in a throwaway
		// space (no lineage, no delta economics to exploit).
		store := page.NewStore(rforkPageSize)
		space := mem.New(store, int64(len(body)))
		if err := space.WriteAt(body, 0); err != nil {
			return err
		}
		img, err := checkpoint.Capture(ids.PID(id+1), "rfork-job", space, control)
		if err != nil {
			return err
		}
		if _, err := checkpoint.Ship(transport.Background(), c.tcp, to, img); err != nil {
			return err
		}
		c.rforksOut.Add(1)
		return nil
	}
	c.arenaMu.Lock()
	ar := c.arenas[to]
	if ar == nil {
		ar = &rforkArena{space: mem.New(page.NewStore(rforkPageSize), rforkArenaSize)}
		c.arenas[to] = ar
	}
	if err := ar.space.WriteAt(body, 0); err != nil {
		c.arenaMu.Unlock()
		return err
	}
	// Zero the tail the previous request wrote past this one's length, so
	// the captured image depends only on the current body.
	if n := int64(len(body)); n < ar.prevLen {
		if err := ar.space.WriteAt(make([]byte, ar.prevLen-n), n); err != nil {
			c.arenaMu.Unlock()
			return err
		}
	}
	ar.prevLen = int64(len(body))
	img, err := checkpoint.Capture(ids.PID(id+1), "rfork-job", ar.space, control)
	if err != nil {
		c.arenaMu.Unlock()
		return err
	}
	// The dirty list accumulates over the arena's whole life — exactly
	// the superset of pages that can differ from any base the peer holds.
	ar.dirty = ar.space.DirtyPageList(ar.dirty[:0])
	_, _, err = c.shipper.Ship(transport.Background(), to, rforkLineage, img, ar.dirty)
	c.arenaMu.Unlock()
	if err != nil {
		return err
	}
	c.rforksOut.Add(1)
	return nil
}

// requestFromImage restores a shipped image and re-reads the JSON
// request embedded in its address space.
func requestFromImage(img *checkpoint.Image) (submitRequest, error) {
	var req submitRequest
	space, err := img.Restore(page.NewStore(img.PageSize))
	if err != nil {
		return req, err
	}
	n := img.Control["len"]
	if n <= 0 || n > img.SpaceSize {
		return req, fmt.Errorf("rfork image: bad payload length %d", n)
	}
	body := make([]byte, n)
	if err := space.ReadAt(body, 0); err != nil {
		return req, err
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return req, fmt.Errorf("rfork image: %w", err)
	}
	return req, nil
}

// clusterView is the /metrics rendering of the peer group.
type clusterView struct {
	Node             ids.NodeID   `json:"node"`
	Members          []ids.NodeID `json:"members"`
	Quorum           int          `json:"quorum"`
	GroupCommit      bool         `json:"group_commit"`
	Ballots          int64        `json:"ballots"`
	ConsensusCommits int64        `json:"consensus_commits"`
	RForksIn         int64        `json:"rforks_in"`
	RForksOut        int64        `json:"rforks_out"`
	RForkFallbacks   int64        `json:"rfork_fallbacks"`
	RForkBases       int          `json:"rfork_cached_bases"`

	// Live membership: the epoch-fenced view the quorum derives from,
	// plus the failure detector's state counts and gossip accounting.
	Epoch          int64                       `json:"epoch"`
	MembersAlive   int                         `json:"members_alive"`
	MembersSuspect int                         `json:"members_suspect"`
	MembersDead    int                         `json:"members_dead"`
	RingNodes      int                         `json:"ring_nodes"`
	Gossip         membership.CountersSnapshot `json:"gossip"`

	Net trace.NetSnapshot `json:"net"`
}

func (c *clusterState) view() *clusterView {
	members := c.membersSnapshot()
	v := &clusterView{
		Node:             c.node,
		Members:          members,
		Quorum:           len(members)/2 + 1,
		GroupCommit:      c.batch,
		Ballots:          c.ballots.Load(),
		ConsensusCommits: c.commits.Load(),
		RForksIn:         c.rforksIn.Load(),
		RForksOut:        c.rforksOut.Load(),
		RForkFallbacks:   c.rforkFallbacks.Load(),
		RForkBases:       c.receiver.CachedBases(),
		Gossip:           c.mc.Snapshot(),
		Net:              c.nc.Snapshot(),
	}
	if c.agent != nil {
		v.Epoch = c.agent.Epoch()
		v.MembersAlive, v.MembersSuspect, v.MembersDead = c.agent.StatusCounts()
		v.RingNodes = c.agent.RingNodes()
		v.Quorum = c.coalescer.Quorum()
	}
	return v
}
