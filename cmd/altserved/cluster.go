package main

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"altrun/internal/checkpoint"
	"altrun/internal/consensus"
	"altrun/internal/core"
	"altrun/internal/ids"
	"altrun/internal/mem"
	"altrun/internal/page"
	"altrun/internal/serve"
	"altrun/internal/trace"
	"altrun/internal/transport"

	// One registration point for every protocol message's wire codec.
	_ "altrun/internal/transport/codec"
)

// The daemon's peer group: each altserved node runs a TCP transport
// endpoint, a consensus voter, a load responder, and an rfork receiver.
// A job submitted to any node commits through a majority of the group's
// voters (§3.2.1: "the synchronization is set up as a majority
// consensus decision"), and a busy node can rfork a job — shipped as a
// checkpoint image — onto the least-loaded peer.

const (
	loadPort      = "cluster/load"
	loadReplyWait = 300 * time.Millisecond
	// rfork delta shipping writes each forwarded request into a
	// fixed-size per-peer arena so successive jobs diff page-by-page
	// against a peer-cached base image; requests that outgrow the arena
	// fall back to a one-off legacy full ship.
	rforkPageSize   = 512
	rforkArenaSize  = 16 << 10
	rforkLineage    = "rfork/json"
	rforkJobTimeout = 10 * time.Second
)

// loadQuery asks a peer for its pool occupancy; loadReply answers.
type loadQuery struct{ Reply transport.Addr }

type loadReply struct {
	Node    ids.NodeID
	Running int
	Queued  int
}

func init() {
	gob.Register(loadQuery{})
	gob.Register(loadReply{})
	// Application-level binary codecs live in the 200+ tag range,
	// keeping the load-balancing chatter off the gob fallback path too.
	transport.RegisterWire(transport.WireCodec{
		Tag: 200, Type: reflect.TypeOf(loadQuery{}),
		Append: func(p any, dst []byte) []byte {
			q := p.(loadQuery)
			dst = transport.AppendUvarint(dst, uint64(q.Reply.Node))
			return transport.AppendString(dst, q.Reply.Port)
		},
		Decode: func(data []byte) (any, error) {
			r := transport.NewWireReader(data)
			q := loadQuery{Reply: transport.Addr{Node: ids.NodeID(r.Uvarint()), Port: r.String()}}
			return q, r.Err()
		},
	})
	transport.RegisterWire(transport.WireCodec{
		Tag: 201, Type: reflect.TypeOf(loadReply{}),
		Append: func(p any, dst []byte) []byte {
			m := p.(loadReply)
			dst = transport.AppendUvarint(dst, uint64(m.Node))
			dst = transport.AppendVarint(dst, int64(m.Running))
			return transport.AppendVarint(dst, int64(m.Queued))
		},
		Decode: func(data []byte) (any, error) {
			r := transport.NewWireReader(data)
			m := loadReply{
				Node:    ids.NodeID(r.Uvarint()),
				Running: int(r.Varint()),
				Queued:  int(r.Varint()),
			}
			return m, r.Err()
		},
	})
}

// peerSpec maps node IDs to cluster listen addresses ("1=host:port,...").
type peerSpec map[ids.NodeID]string

func parsePeers(s string) (peerSpec, error) {
	spec := peerSpec{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("peer %q: want <node>=<host:port>", part)
		}
		n, err := strconv.ParseInt(strings.TrimSpace(id), 10, 32)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("peer %q: bad node id", part)
		}
		spec[ids.NodeID(n)] = strings.TrimSpace(addr)
	}
	if len(spec) == 0 {
		return nil, fmt.Errorf("empty peer spec %q", s)
	}
	return spec, nil
}

// clusterState is one daemon's membership in the peer group.
type clusterState struct {
	node    ids.NodeID
	tcp     *transport.TCP
	voter   *consensus.Voter
	members []ids.NodeID
	ccfg    consensus.Config
	nc      *trace.NetCounters

	// batch selects the group-commit path: claims route through the
	// per-node coalescer (pipelined batched ballots) instead of running
	// one quorum round each. distbench A/Bs the two; production
	// defaults to batched.
	batch     bool
	coalescer *consensus.Coalescer

	// Delta checkpoint shipping for rfork.
	shipper  *checkpoint.Shipper
	receiver *checkpoint.Receiver
	arenaMu  sync.Mutex
	arenas   map[ids.NodeID]*rforkArena

	pool *serve.Pool // wired by start()

	ballots   atomic.Int64
	commits   atomic.Int64
	rforksIn  atomic.Int64
	rforksOut atomic.Int64
	replySeq  atomic.Int64
	rforkSeq  atomic.Int64

	loadSvc  transport.Handle
	rforkSvc transport.Handle
	ctlSvc   transport.Handle
}

// rforkArena is the persistent per-destination capture space: each
// forwarded request overwrites the previous one, so the space's
// accumulated dirty-page set bounds the delta diff.
type rforkArena struct {
	space   *mem.AddressSpace
	prevLen int64
	dirty   []int64 // reused DirtyPageList buffer
}

// newClusterState brings up the transport endpoint and voter. peers
// must include this node's own listen address.
func newClusterState(node ids.NodeID, peers peerSpec) (*clusterState, error) {
	listen, ok := peers[node]
	if !ok {
		return nil, fmt.Errorf("peer spec has no entry for this node (%d)", node)
	}
	nc := &trace.NetCounters{}
	tcp, err := transport.NewTCP(transport.TCPOptions{Node: node, Listen: listen, Counters: nc})
	if err != nil {
		return nil, fmt.Errorf("cluster listen: %w", err)
	}
	members := make([]ids.NodeID, 0, len(peers))
	for id, addr := range peers {
		members = append(members, id)
		if id != node {
			tcp.AddPeer(id, addr)
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return clusterFromTransport(tcp, members, nc), nil
}

// clusterFromTransport wraps an already-meshed transport endpoint (the
// in-process test path; production goes through newClusterState).
func clusterFromTransport(tcp *transport.TCP, members []ids.NodeID, nc *trace.NetCounters) *clusterState {
	ccfg := consensus.Config{Net: nc}
	return &clusterState{
		node:      tcp.ID(),
		tcp:       tcp,
		voter:     consensus.StartVoter(tcp, ""),
		members:   members,
		ccfg:      ccfg,
		nc:        nc,
		batch:     true,
		coalescer: consensus.StartCoalescer(tcp, members, "", ccfg),
		shipper:   checkpoint.NewShipper(tcp, nc),
		receiver:  checkpoint.NewReceiver(tcp, nc, 0),
		arenas:    make(map[ids.NodeID]*rforkArena),
	}
}

// start wires the pool in and launches the load, rfork, and ship-
// control services.
func (c *clusterState) start(pool *serve.Pool) {
	c.pool = pool
	c.loadSvc = c.tcp.Spawn("load-svc", c.serveLoad)
	c.rforkSvc = c.tcp.Spawn("rfork-svc", c.serveRFork)
	c.ctlSvc = c.tcp.Spawn("rfork-ctl", func(p transport.Proc) {
		checkpoint.ServeNaks(p, c.tcp.Bind(checkpoint.RForkCtlPort), c.shipper)
	})
}

func (c *clusterState) close() {
	// Tell peers the lineage's base dies with us: a restarted daemon
	// starts a fresh epoch, and a stale cached base must not satisfy it.
	c.shipper.InvalidateLineage(rforkLineage)
	if c.loadSvc != nil {
		c.loadSvc.Kill()
	}
	if c.rforkSvc != nil {
		c.rforkSvc.Kill()
	}
	if c.ctlSvc != nil {
		c.ctlSvc.Kill()
	}
	c.coalescer.Stop()
	c.voter.Stop()
	c.tcp.Close()
}

// newClaim is the pool's commit arbiter: each job gets its own
// consensus key, so the block commits only once a quorum of the peer
// group has granted it. Batched mode routes the claim through the
// node's coalescer — many concurrent jobs share one quorum round.
func (c *clusterState) newClaim(job serve.Job, id uint64) core.ClaimFunc {
	key := fmt.Sprintf("job/%d/%d", c.node, id)
	if c.batch {
		return func(w *core.World) bool {
			c.ballots.Add(1)
			won := c.coalescer.Claim(transport.Background(), key, w.PID()).Won
			if won {
				c.commits.Add(1)
			}
			return won
		}
	}
	cl := consensus.NewClaimant(key, c.tcp, c.members, "", c.ccfg)
	return func(w *core.World) bool {
		c.ballots.Add(1)
		won := cl.Claim(transport.Background(), w.PID()).Won
		if won {
			c.commits.Add(1)
		}
		return won
	}
}

// serveLoad answers peers' occupancy queries.
func (c *clusterState) serveLoad(p transport.Proc) {
	inbox := c.tcp.Bind(loadPort)
	for {
		env, ok := inbox.Recv(p)
		if !ok {
			return
		}
		q, isQ := env.Payload.(loadQuery)
		if !isQ {
			continue
		}
		st := c.pool.Stats()
		c.tcp.Send(q.Reply, loadReply{Node: c.node, Running: st.Running, Queued: st.Queued})
	}
}

// serveRFork receives shipped jobs: a checkpoint image whose address
// space holds the JSON submit request. Images arrive as legacy full
// ships ([]byte), delta-shipping full bases, or deltas against a cached
// base — the Receiver reconstructs all three (NAKing deltas whose base
// it lacks). The request is re-read from the restored space and the job
// admitted to the local pool under this node's own consensus key.
func (c *clusterState) serveRFork(p transport.Proc) {
	inbox := c.tcp.Bind(checkpoint.RForkPort)
	for {
		env, ok := inbox.Recv(p)
		if !ok {
			return
		}
		img, ok := c.receiver.Handle(env)
		if !ok {
			continue
		}
		req, err := requestFromImage(img)
		if err != nil {
			continue
		}
		job, err := buildJob(req)
		if err != nil {
			continue
		}
		if _, err := c.pool.Submit(job); err == nil {
			c.rforksIn.Add(1)
		}
	}
}

// leastLoaded polls every peer and returns the one with the smallest
// occupancy, provided it is strictly less loaded than this node.
func (c *clusterState) leastLoaded() (ids.NodeID, bool) {
	replyPort := fmt.Sprintf("cluster/load/reply/%d", c.replySeq.Add(1))
	mb := c.tcp.Bind(replyPort)
	defer c.tcp.Unbind(replyPort)
	asked := 0
	for _, m := range c.members {
		if m == c.node {
			continue
		}
		if c.tcp.Send(transport.Addr{Node: m, Port: loadPort}, loadQuery{Reply: transport.Addr{Node: c.node, Port: replyPort}}) {
			asked++
		}
	}
	best, bestLoad := ids.NodeID(0), math.MaxInt
	deadline := time.Now().Add(loadReplyWait)
	for got := 0; got < asked; got++ {
		left := time.Until(deadline)
		if left <= 0 {
			break
		}
		env, ok := mb.RecvTimeout(transport.Background(), left)
		if !ok {
			break
		}
		if rep, isRep := env.Payload.(loadReply); isRep {
			if load := rep.Running + rep.Queued; load < bestLoad {
				best, bestLoad = rep.Node, load
			}
		}
	}
	st := c.pool.Stats()
	if best == 0 || bestLoad >= st.Running+st.Queued {
		return 0, false
	}
	return best, true
}

// rfork ships a submit request to a peer as a checkpoint image: the
// JSON request is written into an address space, captured, and sent
// over the transport exactly like a migrating process (§5.1.2's rfork).
func (c *clusterState) rfork(to ids.NodeID, id uint64, req submitRequest) error {
	// Stamp the stitch ID before the request leaves this node: the
	// receiving daemon's flight recorder tags its timeline with it, so
	// the origin and the executing node's spans join on one key.
	if req.TraceID == "" {
		req.TraceID = fmt.Sprintf("n%d-r%d", c.node, c.rforkSeq.Add(1))
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	control := map[string]int64{"len": int64(len(body))}
	if len(body) > rforkArenaSize {
		// Oversized request: one-off legacy full ship in a throwaway
		// space (no lineage, no delta economics to exploit).
		store := page.NewStore(rforkPageSize)
		space := mem.New(store, int64(len(body)))
		if err := space.WriteAt(body, 0); err != nil {
			return err
		}
		img, err := checkpoint.Capture(ids.PID(id+1), "rfork-job", space, control)
		if err != nil {
			return err
		}
		if _, err := checkpoint.Ship(transport.Background(), c.tcp, to, img); err != nil {
			return err
		}
		c.rforksOut.Add(1)
		return nil
	}
	c.arenaMu.Lock()
	ar := c.arenas[to]
	if ar == nil {
		ar = &rforkArena{space: mem.New(page.NewStore(rforkPageSize), rforkArenaSize)}
		c.arenas[to] = ar
	}
	if err := ar.space.WriteAt(body, 0); err != nil {
		c.arenaMu.Unlock()
		return err
	}
	// Zero the tail the previous request wrote past this one's length, so
	// the captured image depends only on the current body.
	if n := int64(len(body)); n < ar.prevLen {
		if err := ar.space.WriteAt(make([]byte, ar.prevLen-n), n); err != nil {
			c.arenaMu.Unlock()
			return err
		}
	}
	ar.prevLen = int64(len(body))
	img, err := checkpoint.Capture(ids.PID(id+1), "rfork-job", ar.space, control)
	if err != nil {
		c.arenaMu.Unlock()
		return err
	}
	// The dirty list accumulates over the arena's whole life — exactly
	// the superset of pages that can differ from any base the peer holds.
	ar.dirty = ar.space.DirtyPageList(ar.dirty[:0])
	_, _, err = c.shipper.Ship(transport.Background(), to, rforkLineage, img, ar.dirty)
	c.arenaMu.Unlock()
	if err != nil {
		return err
	}
	c.rforksOut.Add(1)
	return nil
}

// requestFromImage restores a shipped image and re-reads the JSON
// request embedded in its address space.
func requestFromImage(img *checkpoint.Image) (submitRequest, error) {
	var req submitRequest
	space, err := img.Restore(page.NewStore(img.PageSize))
	if err != nil {
		return req, err
	}
	n := img.Control["len"]
	if n <= 0 || n > img.SpaceSize {
		return req, fmt.Errorf("rfork image: bad payload length %d", n)
	}
	body := make([]byte, n)
	if err := space.ReadAt(body, 0); err != nil {
		return req, err
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return req, fmt.Errorf("rfork image: %w", err)
	}
	return req, nil
}

// clusterView is the /metrics rendering of the peer group.
type clusterView struct {
	Node             ids.NodeID        `json:"node"`
	Members          []ids.NodeID      `json:"members"`
	Quorum           int               `json:"quorum"`
	GroupCommit      bool              `json:"group_commit"`
	Ballots          int64             `json:"ballots"`
	ConsensusCommits int64             `json:"consensus_commits"`
	RForksIn         int64             `json:"rforks_in"`
	RForksOut        int64             `json:"rforks_out"`
	RForkBases       int               `json:"rfork_cached_bases"`
	Net              trace.NetSnapshot `json:"net"`
}

func (c *clusterState) view() *clusterView {
	return &clusterView{
		Node:             c.node,
		Members:          c.members,
		Quorum:           len(c.members)/2 + 1,
		GroupCommit:      c.batch,
		Ballots:          c.ballots.Load(),
		ConsensusCommits: c.commits.Load(),
		RForksIn:         c.rforksIn.Load(),
		RForksOut:        c.rforksOut.Load(),
		RForkBases:       c.receiver.CachedBases(),
		Net:              c.nc.Snapshot(),
	}
}
