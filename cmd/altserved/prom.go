package main

import (
	"bufio"
	"net/http"

	"altrun/internal/obs"
)

// writeProm renders the daemon's metrics in Prometheus text format
// (0.0.4): the same counters the JSON view carries, flattened under the
// altrun_ prefix, with the flight recorder's histograms merged in. This
// is the /metrics?format=prom path, so a stock Prometheus scrape sees
// pool admission, selection, message, page, cluster, and obs series
// from one endpoint.
func (s *server) writeProm(w http.ResponseWriter, m metricsView) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	// Pool admission and speculation-budget counters.
	obs.WriteCounter(bw, "altrun_jobs_submitted_total", "Jobs accepted by the pool.", float64(m.Pool.JobsSubmitted))
	obs.WriteCounter(bw, "altrun_jobs_rejected_total", "Jobs rejected at admission.", float64(m.Pool.JobsRejected))
	obs.WriteCounter(bw, "altrun_jobs_completed_total", "Jobs that committed an alternative.", float64(m.Pool.JobsCompleted))
	obs.WriteCounter(bw, "altrun_jobs_failed_total", "Jobs whose alternatives all failed.", float64(m.Pool.JobsFailed))
	obs.WriteCounter(bw, "altrun_jobs_timed_out_total", "Jobs that hit their deadline.", float64(m.Pool.JobsTimedOut))
	obs.WriteCounter(bw, "altrun_jobs_cancelled_total", "Jobs abandoned by their caller.", float64(m.Pool.JobsCancelled))
	obs.WriteCounter(bw, "altrun_waves_total", "Alternative waves spawned.", float64(m.Pool.Waves))
	obs.WriteCounter(bw, "altrun_lazy_waves_total", "Waves after the first (budget-deferred alternatives).", float64(m.Pool.LazyWaves))
	obs.WriteCounter(bw, "altrun_alts_unspawned_total", "Alternatives never spawned because an earlier wave committed.", float64(m.Pool.AltsUnspawned))
	obs.WriteCounter(bw, "altrun_budget_waits_total", "Waves that blocked waiting for speculation tokens.", float64(m.Pool.TokenWaits))
	obs.WriteGauge(bw, "altrun_jobs_queued", "Jobs waiting for a worker.", float64(m.Pool.Queued))
	obs.WriteGauge(bw, "altrun_jobs_running", "Jobs executing now.", float64(m.Pool.Running))
	obs.WriteGauge(bw, "altrun_spec_tokens_in_use", "Speculation tokens held.", float64(m.Pool.TokensInUse))
	obs.WriteGauge(bw, "altrun_spec_high_water", "Max concurrent speculative worlds seen.", float64(m.Pool.SpecHighWater))

	// Adaptive speculation controller decisions and budget resizing.
	if m.Policy.Enabled {
		obs.WriteGauge(bw, "altrun_policy_enabled", "Adaptive speculation controller on.", 1)
	} else {
		obs.WriteGauge(bw, "altrun_policy_enabled", "Adaptive speculation controller on.", 0)
	}
	obs.WriteCounter(bw, "altrun_policy_decisions_total", "Adaptive controller decisions made.", float64(m.Policy.Decisions))
	obs.WriteCounter(bw, "altrun_policy_sequential_total", "Jobs run sequentially (predicted PI below threshold).", float64(m.Policy.SeqDecisions))
	obs.WriteCounter(bw, "altrun_policy_speculate_total", "Jobs run speculatively by decision.", float64(m.Policy.SpecDecisions))
	obs.WriteCounter(bw, "altrun_policy_explore_total", "Forced full-degree explore ticks.", float64(m.Policy.ExploreDecisions))
	obs.WriteCounter(bw, "altrun_policy_budget_grows_total", "Speculation budget grow steps.", float64(m.Policy.BudgetGrows))
	obs.WriteCounter(bw, "altrun_policy_budget_shrinks_total", "Speculation budget shrink steps.", float64(m.Policy.BudgetShrinks))
	obs.WriteCounter(bw, "altrun_history_evictions_total", "History (kind, alt) entries evicted by the caps.", float64(m.Policy.HistoryEvictions))
	obs.WriteGauge(bw, "altrun_policy_mean_degree", "Mean chosen speculation degree.", m.Policy.MeanDegree)
	obs.WriteGauge(bw, "altrun_spec_tokens_capacity", "Current speculation budget capacity.", float64(m.Policy.SpecTokens))
	obs.WriteGauge(bw, "altrun_history_kinds", "Job kinds retained in the history.", float64(m.Policy.HistoryKinds))

	// Selection (predicate-propagation) counters — satellite: these and
	// the trace drop counter were previously JSON-only.
	obs.WriteCounter(bw, "altrun_sel_resolutions_total", "Selection resolutions processed.", float64(m.Selection.Resolutions))
	obs.WriteCounter(bw, "altrun_sel_subscribers_visited_total", "Subscriber worlds visited during selection.", float64(m.Selection.SubscribersVisited))
	obs.WriteCounter(bw, "altrun_sel_eliminations_total", "Worlds eliminated by selection.", float64(m.Selection.Eliminations))
	obs.WriteCounter(bw, "altrun_sel_shard_contention_total", "Registry shard lock contention events.", float64(m.Selection.ShardContention))
	obs.WriteCounter(bw, "altrun_sel_alias_fast_path_total", "Alias resolutions served by the fast path.", float64(m.Selection.AliasFastPath))
	obs.WriteCounter(bw, "altrun_sel_alias_walks_total", "Alias chain walks.", float64(m.Selection.AliasWalks))

	// Message routing.
	obs.WriteCounter(bw, "altrun_msgs_sent_total", "Messages submitted to the router.", float64(m.Messages.Sent))
	obs.WriteCounter(bw, "altrun_msgs_accepted_total", "Messages accepted by a receiver.", float64(m.Messages.Accepted))
	obs.WriteCounter(bw, "altrun_msgs_ignored_total", "Messages ignored (eliminated or absent receiver).", float64(m.Messages.Ignored))
	obs.WriteCounter(bw, "altrun_msgs_splits_total", "Receiver splits on speculative delivery.", float64(m.Messages.Splits))

	// Memory and tracing.
	obs.WriteGauge(bw, "altrun_live_worlds", "Worlds alive in the registry.", float64(m.LiveWorlds))
	obs.WriteCounter(bw, "altrun_page_allocs_total", "Pages allocated.", float64(m.PageAllocs))
	obs.WriteCounter(bw, "altrun_page_copies_total", "COW page copies.", float64(m.PageCopies))
	obs.WriteCounter(bw, "altrun_trace_dropped_total", "Trace events dropped by the ring buffer.", float64(m.TraceDropped))

	// Peer group, when clustered.
	if c := m.Cluster; c != nil {
		obs.WriteCounter(bw, "altrun_cluster_ballots_total", "Consensus ballots run.", float64(c.Ballots))
		obs.WriteCounter(bw, "altrun_cluster_commits_total", "Consensus commits won.", float64(c.ConsensusCommits))
		obs.WriteCounter(bw, "altrun_cluster_rforks_in_total", "Jobs received via rfork.", float64(c.RForksIn))
		obs.WriteCounter(bw, "altrun_cluster_rforks_out_total", "Jobs shipped via rfork.", float64(c.RForksOut))
		obs.WriteCounter(bw, "altrun_net_msgs_sent_total", "Transport messages sent.", float64(c.Net.MsgsSent))
		obs.WriteCounter(bw, "altrun_net_msgs_recv_total", "Transport messages received.", float64(c.Net.MsgsRecv))
		obs.WriteCounter(bw, "altrun_net_bytes_sent_total", "Transport bytes sent.", float64(c.Net.BytesSent))
		obs.WriteCounter(bw, "altrun_net_bytes_recv_total", "Transport bytes received.", float64(c.Net.BytesRecv))
		obs.WriteCounter(bw, "altrun_net_dropped_total", "Transport messages dropped.", float64(c.Net.Dropped))
		obs.WriteCounter(bw, "altrun_net_retries_total", "Transport reconnect attempts.", float64(c.Net.Retries))
		obs.WriteCounter(bw, "altrun_net_rtt_dropped_total", "RTT samples discarded for straddling a reconnect.", float64(c.Net.RTTDropped))
		obs.WriteGauge(bw, "altrun_net_rtt_ewma_ms", "Smoothed consensus round-trip time.", c.Net.RTTEWMAMS)
		obs.WriteGauge(bw, "altrun_net_rtt_p99_ms", "99th-percentile consensus round-trip time.", c.Net.RTTP99MS)
		if c.GroupCommit {
			obs.WriteGauge(bw, "altrun_cluster_group_commit", "Group-commit (batched ballot) mode on.", 1)
		} else {
			obs.WriteGauge(bw, "altrun_cluster_group_commit", "Group-commit (batched ballot) mode on.", 0)
		}
		obs.WriteCounter(bw, "altrun_ballot_rounds_total", "Batched quorum rounds started by the coalescer.", float64(c.Net.BallotRounds))
		obs.WriteCounter(bw, "altrun_ballots_coalesced_total", "Claims carried inside batched quorum rounds.", float64(c.Net.BallotsCoalesced))
		obs.WriteCounter(bw, "altrun_codec_frames_total", "Frames encoded on the binary fast path.", float64(c.Net.CodecFrames))
		obs.WriteCounter(bw, "altrun_codec_fallbacks_total", "Frames that fell back to gob encoding.", float64(c.Net.CodecFallbacks))
		obs.WriteCounter(bw, "altrun_rfork_full_ships_total", "Full checkpoint images shipped.", float64(c.Net.FullShips))
		obs.WriteCounter(bw, "altrun_rfork_delta_ships_total", "Delta checkpoint images shipped.", float64(c.Net.DeltaShips))
		obs.WriteCounter(bw, "altrun_rfork_full_ship_bytes_total", "Bytes shipped as full images.", float64(c.Net.FullShipBytes))
		obs.WriteCounter(bw, "altrun_rfork_delta_ship_bytes_total", "Bytes shipped as deltas.", float64(c.Net.DeltaShipBytes))
		obs.WriteCounter(bw, "altrun_rfork_ship_misses_total", "Deltas NAKed for a missing or stale base.", float64(c.Net.ShipMisses))
		obs.WriteGauge(bw, "altrun_rfork_cached_bases", "Delta-ship base images cached on this node.", float64(c.RForkBases))
		obs.WriteCounter(bw, "altrun_rfork_fallbacks_total", "RForks run locally because no ring peer had window.", float64(c.RForkFallbacks))

		// SWIM membership: view composition, ring, and gossip traffic.
		obs.WriteGauge(bw, "altrun_member_epoch", "Membership view epoch.", float64(c.Epoch))
		obs.WriteGauge(bw, "altrun_members_alive", "Members alive in the local view.", float64(c.MembersAlive))
		obs.WriteGauge(bw, "altrun_members_suspect", "Members under suspicion in the local view.", float64(c.MembersSuspect))
		obs.WriteGauge(bw, "altrun_members_dead", "Members declared dead in the local view.", float64(c.MembersDead))
		obs.WriteGauge(bw, "altrun_ring_nodes", "Nodes on the consistent-hash placement ring.", float64(c.RingNodes))
		obs.WriteCounter(bw, "altrun_gossip_probes_sent_total", "Direct membership pings originated.", float64(c.Gossip.ProbesSent))
		obs.WriteCounter(bw, "altrun_gossip_acks_received_total", "Acks matching an outstanding probe.", float64(c.Gossip.AcksReceived))
		obs.WriteCounter(bw, "altrun_gossip_indirect_probes_total", "Ping-req fan-outs after a direct miss.", float64(c.Gossip.IndirectProbes))
		obs.WriteCounter(bw, "altrun_gossip_suspicions_total", "Members marked suspect locally.", float64(c.Gossip.Suspicions))
		obs.WriteCounter(bw, "altrun_gossip_refutations_total", "Own-suspicion refutations (incarnation bumps).", float64(c.Gossip.Refutations))
		obs.WriteCounter(bw, "altrun_gossip_deaths_total", "Suspicion timeouts declared dead.", float64(c.Gossip.Deaths))
		obs.WriteCounter(bw, "altrun_gossip_joins_total", "New members admitted to the view.", float64(c.Gossip.Joins))
		obs.WriteCounter(bw, "altrun_gossip_leaves_total", "Graceful departures observed.", float64(c.Gossip.Leaves))
		obs.WriteCounter(bw, "altrun_gossip_epoch_changes_total", "View epoch bumps (local and adopted).", float64(c.Gossip.EpochChanges))
		obs.WriteCounter(bw, "altrun_gossip_msgs_total", "Membership messages sent.", float64(c.Gossip.GossipMsgs))
		obs.WriteCounter(bw, "altrun_gossip_bytes_total", "Estimated wire bytes of membership traffic.", float64(c.Gossip.GossipBytes))
	}

	// Flight recorder aggregates and histograms (no-op when disabled).
	s.rec.WritePrometheus(bw)
}
