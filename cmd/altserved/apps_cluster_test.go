package main

import (
	"testing"
	"time"
)

// TestClusterTypedRFork ships stm and choo jobs to a peer through the
// typed rfork path: the spec itself crosses the wire (tags 202/203),
// the receiving daemon rebuilds the job from it and runs it to
// completion under its own consensus key.
func TestClusterTypedRFork(t *testing.T) {
	nodes := testCluster(t, 2)
	to := nodes[1].state.node

	if err := nodes[0].state.rfork(to, 0, submitRequest{
		Kind: "stm",
		Keys: 4, Alts: 3, Ops: 6, ReadFrac: 0.3, Seed: 5,
	}); err != nil {
		t.Fatalf("typed stm rfork: %v", err)
	}
	if err := nodes[0].state.rfork(to, 0, submitRequest{
		Kind:    "choo",
		Program: "proc a { x := 1; }\nproc b { x := 2; }\nchoo(a, b);\n",
	}); err != nil {
		t.Fatalf("typed choo rfork: %v", err)
	}
	if got := nodes[0].state.rforksOut.Load(); got != 2 {
		t.Fatalf("rforksOut = %d, want 2", got)
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		st := nodes[1].pool.Stats()
		if nodes[1].state.rforksIn.Load() == 2 && st.JobsCompleted == 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer never completed both typed jobs: rforksIn=%d stats=%+v",
				nodes[1].state.rforksIn.Load(), st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
