package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"altrun/internal/core"
	"altrun/internal/obs"
	"altrun/internal/serve"
)

func testServer(t *testing.T) (*httptest.Server, *serve.Pool) {
	t.Helper()
	// Rate-1 recorder: every job is sampled, so the /debug/blocks and
	// /metrics obs assertions are deterministic.
	rec := obs.NewRecorder(obs.Config{SampleRate: 1})
	pool, err := serve.NewPool(serve.Config{
		Workers:         2,
		SpecTokens:      4,
		QueueDepth:      8,
		DefaultDeadline: 30 * time.Second,
		Runtime:         core.New(core.Config{Trace: true, TraceCap: 1024}),
		Recorder:        rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(pool, nil, rec))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := pool.Close(ctx); err != nil {
			t.Errorf("pool close: %v", err)
		}
	})
	return ts, pool
}

func postJSON(t *testing.T, url string, body any) (*http.Response, jobView) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, v
}

func TestSubmitSortAndWait(t *testing.T) {
	ts, _ := testServer(t)
	resp, v := postJSON(t, ts.URL+"/jobs?wait=1", submitRequest{
		Kind:  "sort",
		Input: []int{5, 3, 9, 1, 4},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %+v", resp.StatusCode, v)
	}
	if v.Status != "done" {
		t.Fatalf("job status = %q (error %q), want done", v.Status, v.Error)
	}
	got, ok := v.Value.([]any)
	if !ok || len(got) != 5 {
		t.Fatalf("value = %v", v.Value)
	}
	want := []float64{1, 3, 4, 5, 9} // JSON numbers decode as float64
	for i, x := range got {
		if x.(float64) != want[i] {
			t.Fatalf("value[%d] = %v, want %v", i, x, want[i])
		}
	}
}

func TestSubmitPrologAndPoll(t *testing.T) {
	ts, _ := testServer(t)
	resp, v := postJSON(t, ts.URL+"/jobs", submitRequest{
		Kind:    "prolog",
		Program: "likes(alice, go). likes(bob, go). likes(bob, c).",
		Query:   "likes(X, c)",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, body %+v", resp.StatusCode, v)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(fmt.Sprintf("%s/jobs/%d", ts.URL, v.ID))
		if err != nil {
			t.Fatal(err)
		}
		var cur jobView
		if err := json.NewDecoder(r.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if cur.Status == "done" {
			sol, ok := cur.Value.(map[string]any)
			if !ok || sol["X"] != "bob" {
				t.Fatalf("solution = %v", cur.Value)
			}
			break
		}
		if cur.Status != "queued" && cur.Status != "running" {
			t.Fatalf("job status = %q (error %q)", cur.Status, cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitBadRequests(t *testing.T) {
	ts, _ := testServer(t)
	for _, req := range []submitRequest{
		{Kind: "unknown"},
		{Kind: "sort"},                    // no input
		{Kind: "prolog"},                  // no query
		{Kind: "prolog", Query: "likes("}, // parse error
	} {
		resp, v := postJSON(t, ts.URL+"/jobs", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("kind %q: status = %d, body %+v", req.Kind, resp.StatusCode, v)
		}
	}
}

func TestCancelEndpointFreesJob(t *testing.T) {
	ts, pool := testServer(t)
	// A job the daemon cannot finish quickly: large array with per-
	// compare cost, tight enough that cancel lands while it runs.
	input := make([]int, 2000)
	for i := range input {
		input[i] = len(input) - i
	}
	resp, v := postJSON(t, ts.URL+"/jobs", submitRequest{
		Kind:         "sort",
		Input:        input,
		PerCompareNS: int64(50 * time.Microsecond),
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/jobs/%d", ts.URL, v.ID), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", dresp.StatusCode)
	}
	tk, err := pool.Ticket(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := tk.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != serve.StatusCancelled {
		t.Fatalf("status after DELETE = %v, want cancelled", res.Status)
	}
	// The abandoned job's whole speculative subtree must be freed.
	deadline := time.Now().Add(5 * time.Second)
	for pool.Runtime().LiveWorlds() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d live worlds after cancel", pool.Runtime().LiveWorlds())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	if resp, v := postJSON(t, ts.URL+"/jobs?wait=1", submitRequest{
		Kind:  "sort",
		Input: []int{3, 1, 2},
	}); resp.StatusCode != http.StatusOK || v.Status != "done" {
		t.Fatalf("warmup job: %d %+v", resp.StatusCode, v)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsView
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Pool.JobsCompleted < 1 {
		t.Fatalf("metrics JobsCompleted = %d, want ≥ 1", m.Pool.JobsCompleted)
	}
	if m.Pool.SpecTokens != 4 || m.Pool.Workers != 2 {
		t.Fatalf("metrics config echo wrong: %+v", m.Pool)
	}
	if m.LiveWorlds != 0 {
		t.Fatalf("LiveWorlds = %d after quiescence", m.LiveWorlds)
	}
}

func TestUnknownJobAndForget(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := http.Get(ts.URL + "/jobs/424242")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
	}
	_, v := postJSON(t, ts.URL+"/jobs?wait=1", submitRequest{Kind: "sort", Input: []int{2, 1}})
	if v.Status != "done" {
		t.Fatalf("job = %+v", v)
	}
	r, err := http.Get(fmt.Sprintf("%s/jobs/%d?forget=1", ts.URL, v.ID))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	r, err = http.Get(fmt.Sprintf("%s/jobs/%d", ts.URL, v.ID))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("forgotten job status = %d, want 404", r.StatusCode)
	}
}
