package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	appchoo "altrun/apps/choo"
	approlog "altrun/apps/prolog"
	apprecovery "altrun/apps/recovery"
	appstm "altrun/apps/stm"
	"altrun/internal/msg"
	"altrun/internal/obs"
	"altrun/internal/serve"
	istm "altrun/internal/stm"
	"altrun/internal/trace"
)

// submitRequest is the POST /jobs body. Kind selects the job adapter;
// the other fields are kind-specific.
type submitRequest struct {
	// Kind is "sort" (recovery-block demo), "prolog", "stm"
	// (contended-store transaction block), or "choo" (choice-conjunctive
	// program).
	Kind string `json:"kind"`
	// DeadlineMS bounds the job end to end (0 = server default).
	DeadlineMS int64 `json:"deadline_ms"`

	// sort: the input array, optional fault injection into the primary
	// version, and simulated CPU per comparison. Skew > 1 multiplies
	// the secondary/tertiary per-comparison cost, making the primary
	// the dominant alternative (the controller's sequential regime).
	Input        []int   `json:"input,omitempty"`
	Faulty       bool    `json:"faulty,omitempty"`
	PerCompareNS int64   `json:"per_compare_ns,omitempty"`
	Skew         float64 `json:"skew,omitempty"`

	// prolog: a program (Prelude is preloaded) and a query.
	// choo reuses Program as its source text.
	Program string `json:"program,omitempty"`
	Query   string `json:"query,omitempty"`

	// stm: workload knobs — contended sink pages (Keys), alternatives
	// per block (Alts), operations per transaction (Ops), read ratio,
	// zipf skew (<=1 uniform), abort injection (every Nth alternative),
	// and the deterministic op-generation seed.
	Keys       int     `json:"keys,omitempty"`
	Alts       int     `json:"alts,omitempty"`
	Ops        int     `json:"ops,omitempty"`
	ReadFrac   float64 `json:"read_frac,omitempty"`
	Zipf       float64 `json:"zipf,omitempty"`
	AbortEvery int     `json:"abort_every,omitempty"`
	Seed       int64   `json:"seed,omitempty"`

	// MaxDegree caps concurrent alternatives for stm and choo jobs
	// (0 = pool default; 1 = sequential fall-through).
	MaxDegree int `json:"max_degree,omitempty"`

	// TraceID stitches this job's flight-recorder timeline across
	// nodes; rfork stamps one automatically when forwarding.
	TraceID string `json:"trace_id,omitempty"`
}

// appJobSeq numbers locally-built stm and choo jobs (the spec identity
// a typed rfork carries to its executing node).
var appJobSeq atomic.Int64

func stmSpecFrom(req submitRequest) istm.TxnSpec {
	return istm.TxnSpec{
		TxnID:      appJobSeq.Add(1),
		Keys:       req.Keys,
		Alts:       req.Alts,
		Ops:        req.Ops,
		ReadFrac:   req.ReadFrac,
		Zipf:       req.Zipf,
		AbortEvery: req.AbortEvery,
		Seed:       req.Seed,
		DeadlineMS: req.DeadlineMS,
		MaxDegree:  req.MaxDegree,
	}
}

func chooSpecFrom(req submitRequest) appchoo.ProgSpec {
	return appchoo.ProgSpec{
		ProgID:     appJobSeq.Add(1),
		Source:     req.Program,
		DeadlineMS: req.DeadlineMS,
		MaxDegree:  req.MaxDegree,
	}
}

// jobView is the JSON rendering of a job's state.
type jobView struct {
	ID            uint64 `json:"id"`
	Status        string `json:"status"`
	Winner        string `json:"winner,omitempty"`
	WinnerIndex   int    `json:"winner_index,omitempty"`
	Waves         int    `json:"waves,omitempty"`
	AltsUnspawned int    `json:"alts_unspawned,omitempty"`
	ElapsedMS     int64  `json:"elapsed_ms,omitempty"`
	Value         any    `json:"value,omitempty"`
	Error         string `json:"error,omitempty"`
}

// metricsView is the GET /metrics payload.
type metricsView struct {
	Pool         serve.PoolStats    `json:"pool"`
	Policy       serve.PolicyStats  `json:"policy"`
	Selection    trace.SelSnapshot  `json:"selection"`
	Messages     msg.Stats          `json:"messages"`
	LiveWorlds   int                `json:"live_worlds"`
	PageAllocs   int64              `json:"page_allocs"`
	PageCopies   int64              `json:"page_copies"`
	TraceDropped uint64             `json:"trace_dropped"`
	Cluster      *clusterView       `json:"cluster,omitempty"`
	Obs          *obs.RecorderStats `json:"obs,omitempty"`
}

type server struct {
	pool    *serve.Pool
	cluster *clusterState // nil when running single-node
	rec     *obs.Recorder // nil when the flight recorder is off
}

// newHandler builds the daemon's HTTP API around a pool:
//
//	POST   /jobs        submit (?wait=1 blocks for the result; a client
//	                    that disconnects while waiting abandons the job,
//	                    freeing its speculative subtree)
//	GET    /jobs/{id}   status/result (?forget=1 drops a terminal job)
//	DELETE /jobs/{id}   cancel
//	GET    /metrics     pool + selection + message + page + obs counters
//	                    (?format=prom renders Prometheus text instead)
//	GET    /debug/blocks            recent flight-recorder timelines
//	GET    /debug/blocks/{id}       one block's full timeline
//	GET    /debug/blocks/{id}/trace the block as Chrome trace-event JSON
//	GET    /debug/members           live membership table (clustered only)
//	GET    /healthz     liveness
func newHandler(pool *serve.Pool, cluster *clusterState, rec *obs.Recorder) http.Handler {
	s := &server{pool: pool, cluster: cluster, rec: rec}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/blocks", s.handleBlocks)
	mux.HandleFunc("GET /debug/blocks/{id}", s.handleBlock)
	mux.HandleFunc("GET /debug/blocks/{id}/trace", s.handleBlockTrace)
	mux.HandleFunc("GET /debug/members", s.handleMembers)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// buildJob maps a submit request onto a serve.Job via the apps
// adapters.
func buildJob(req submitRequest) (serve.Job, error) {
	job, err := buildJobKind(req)
	if err != nil {
		return job, err
	}
	// Carry the cross-node stitch ID whatever the kind: an rforked
	// job's timeline on this node shares it with the origin node's.
	job.TraceID = req.TraceID
	return job, nil
}

func buildJobKind(req submitRequest) (serve.Job, error) {
	deadline := time.Duration(req.DeadlineMS) * time.Millisecond
	switch req.Kind {
	case "sort":
		if len(req.Input) == 0 {
			return serve.Job{}, errors.New("sort job needs a non-empty input array")
		}
		perCompare := time.Duration(req.PerCompareNS) * time.Nanosecond
		return apprecovery.SortJobSkewed(req.Input, perCompare, req.Skew, req.Faulty, deadline), nil
	case "prolog":
		if req.Query == "" {
			return serve.Job{}, errors.New("prolog job needs a query")
		}
		db := approlog.NewDB()
		if err := db.Load(approlog.Prelude); err != nil {
			return serve.Job{}, fmt.Errorf("prelude: %w", err)
		}
		if req.Program != "" {
			if err := db.Load(req.Program); err != nil {
				return serve.Job{}, fmt.Errorf("program: %w", err)
			}
		}
		return approlog.QueryJob(db, req.Query, approlog.OrConfig{}, 0, deadline)
	case "stm":
		return appstm.JobFromSpec(stmSpecFrom(req)), nil
	case "choo":
		if req.Program == "" {
			return serve.Job{}, errors.New("choo job needs a program")
		}
		return chooSpecFrom(req).Job()
	default:
		return serve.Job{}, fmt.Errorf("unknown job kind %q (want sort, prolog, stm, or choo)", req.Kind)
	}
}

func viewOf(id uint64, tk *serve.Ticket) jobView {
	v := jobView{ID: id, Status: tk.Status().String()}
	if res, ok := tk.Result(); ok {
		v.Winner = res.Winner
		v.WinnerIndex = res.WinnerIndex
		v.Waves = res.Waves
		v.AltsUnspawned = res.AltsUnspawned
		v.ElapsedMS = res.Elapsed.Milliseconds()
		v.Value = res.Value
		if res.Err != nil {
			v.Error = res.Err.Error()
		}
	}
	return v
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	job, err := buildJob(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// In a peer group, ?rfork=1 forwards the job to its lineage's ring
	// owner up front; a full local queue triggers the same forwarding as
	// a fallback before the submission is rejected. A saturated or
	// suspected ring means the job runs locally instead.
	if s.cluster != nil && r.URL.Query().Get("rfork") != "" {
		if to, ok := s.cluster.ringTarget(req.Kind); ok {
			if ferr := s.cluster.rfork(to, 0, req); ferr == nil {
				writeJSON(w, http.StatusAccepted, map[string]any{"rforked_to": to})
				return
			}
		}
	}
	tk, err := s.pool.Submit(job)
	switch {
	case errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrDraining):
		if s.cluster != nil && errors.Is(err, serve.ErrQueueFull) {
			if to, ok := s.cluster.ringTarget(req.Kind); ok {
				if ferr := s.cluster.rfork(to, 0, req); ferr == nil {
					writeJSON(w, http.StatusAccepted, map[string]any{"rforked_to": to})
					return
				}
			}
		}
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		if _, err := tk.Wait(r.Context()); err != nil {
			// The client went away mid-wait: abandon the job so its
			// whole speculative subtree is freed.
			tk.Cancel()
			writeError(w, http.StatusRequestTimeout, err)
			return
		}
		writeJSON(w, http.StatusOK, viewOf(tk.ID(), tk))
		return
	}
	writeJSON(w, http.StatusAccepted, viewOf(tk.ID(), tk))
}

func (s *server) ticketFromPath(w http.ResponseWriter, r *http.Request) (*serve.Ticket, uint64, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id: %w", err))
		return nil, 0, false
	}
	tk, err := s.pool.Ticket(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil, 0, false
	}
	return tk, id, true
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	tk, id, ok := s.ticketFromPath(w, r)
	if !ok {
		return
	}
	v := viewOf(id, tk)
	if r.URL.Query().Get("forget") != "" && tk.Status().Terminal() {
		s.pool.Forget(id)
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	tk, id, ok := s.ticketFromPath(w, r)
	if !ok {
		return
	}
	tk.Cancel()
	writeJSON(w, http.StatusOK, jobView{ID: id, Status: tk.Status().String()})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rt := s.pool.Runtime()
	m := metricsView{
		Pool:       s.pool.Stats(),
		Policy:     s.pool.PolicyStats(),
		Selection:  rt.SelStats(),
		Messages:   rt.MsgStats(),
		LiveWorlds: rt.LiveWorlds(),
		PageAllocs: rt.Store().Allocs(),
		PageCopies: rt.Store().Copies(),
	}
	if l := rt.Log(); l != nil {
		m.TraceDropped = l.Dropped()
	}
	if s.cluster != nil {
		m.Cluster = s.cluster.view()
	}
	m.Obs = s.rec.Stats()
	if r.URL.Query().Get("format") == "prom" {
		s.writeProm(w, m)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// handleBlocks lists the flight recorder's retained timelines,
// newest first, plus aggregate recorder stats.
func (s *server) handleBlocks(w http.ResponseWriter, _ *http.Request) {
	if s.rec == nil {
		writeError(w, http.StatusNotFound, errors.New("flight recorder disabled (-obs-rate 0)"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"stats":  s.rec.Stats(),
		"blocks": s.rec.Recent(),
	})
}

func (s *server) timelineFromPath(w http.ResponseWriter, r *http.Request) (*obs.Timeline, bool) {
	if s.rec == nil {
		writeError(w, http.StatusNotFound, errors.New("flight recorder disabled (-obs-rate 0)"))
		return nil, false
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad block id: %w", err))
		return nil, false
	}
	tl, ok := s.rec.Timeline(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no timeline for block %d (evicted or unsampled)", id))
		return nil, false
	}
	return tl, true
}

// handleMembers dumps the membership agent's full table — tombstones
// included — plus the epoch and suspicion timeout, for operators
// debugging churn.
func (s *server) handleMembers(w http.ResponseWriter, _ *http.Request) {
	if s.cluster == nil || s.cluster.agent == nil {
		writeError(w, http.StatusNotFound, errors.New("not clustered (no -peers/-join)"))
		return
	}
	a := s.cluster.agent
	writeJSON(w, http.StatusOK, map[string]any{
		"node":              s.cluster.node,
		"epoch":             a.Epoch(),
		"view":              a.View(),
		"members":           a.Members(),
		"ring_nodes":        a.RingNodes(),
		"suspicion_timeout": a.SuspicionTimeout().String(),
		"gossip":            s.cluster.mc.Snapshot(),
	})
}

func (s *server) handleBlock(w http.ResponseWriter, r *http.Request) {
	if tl, ok := s.timelineFromPath(w, r); ok {
		writeJSON(w, http.StatusOK, tl)
	}
}

func (s *server) handleBlockTrace(w http.ResponseWriter, r *http.Request) {
	tl, ok := s.timelineFromPath(w, r)
	if !ok {
		return
	}
	raw, err := tl.ChromeTrace()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(raw)
}
