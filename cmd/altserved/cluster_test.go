package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"altrun/internal/core"
	"altrun/internal/ids"
	"altrun/internal/obs"
	"altrun/internal/serve"
	"altrun/internal/trace"
	"altrun/internal/transport"
)

// clusterNode is one in-process daemon: transport + voter + pool + HTTP.
type clusterNode struct {
	state *clusterState
	pool  *serve.Pool
	http  *httptest.Server
	rec   *obs.Recorder
}

// testCluster brings up n daemons meshed over loopback TCP on ephemeral
// ports — the in-process equivalent of `altserved -node i -peers ...`.
func testCluster(t *testing.T, n int) []*clusterNode {
	t.Helper()
	tcps := make([]*transport.TCP, n)
	members := make([]ids.NodeID, n)
	for i := range tcps {
		nc := &trace.NetCounters{}
		tcp, err := transport.NewTCP(transport.TCPOptions{Node: ids.NodeID(i + 1), Counters: nc})
		if err != nil {
			t.Fatal(err)
		}
		tcps[i] = tcp
		members[i] = tcp.ID()
	}
	for i, a := range tcps {
		for j, b := range tcps {
			if i != j {
				a.AddPeer(b.ID(), b.Addr())
			}
		}
	}
	nodes := make([]*clusterNode, n)
	for i, tcp := range tcps {
		cs := clusterFromTransport(tcp, members, tcp.Counters())
		rec := obs.NewRecorder(obs.Config{SampleRate: 1})
		pool, err := serve.NewPool(serve.Config{
			Workers:         2,
			SpecTokens:      4,
			QueueDepth:      8,
			DefaultDeadline: 30 * time.Second,
			Runtime:         core.New(core.Config{Trace: true, TraceCap: 1024}),
			NewClaim:        cs.newClaim,
			Recorder:        rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		cs.start(pool)
		nodes[i] = &clusterNode{
			state: cs,
			pool:  pool,
			http:  httptest.NewServer(newHandler(pool, cs, rec)),
			rec:   rec,
		}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.http.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := nd.pool.Close(ctx); err != nil {
				t.Errorf("pool close: %v", err)
			}
			cancel()
			nd.state.close()
		}
	})
	return nodes
}

// startDaemon brings up one daemon through the production constructor
// (the same path `altserved -peers ...` / `altserved -join ...` takes),
// rather than testCluster's pre-meshed transport shortcut.
func startDaemon(t *testing.T, opts clusterOptions) *clusterNode {
	t.Helper()
	cs, err := newClusterState(opts)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(obs.Config{SampleRate: 1})
	pool, err := serve.NewPool(serve.Config{
		Workers:         2,
		SpecTokens:      4,
		QueueDepth:      8,
		DefaultDeadline: 30 * time.Second,
		Runtime:         core.New(core.Config{Trace: true, TraceCap: 1024}),
		NewClaim:        cs.newClaim,
		Recorder:        rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	cs.start(pool)
	nd := &clusterNode{
		state: cs,
		pool:  pool,
		http:  httptest.NewServer(newHandler(pool, cs, rec)),
		rec:   rec,
	}
	t.Cleanup(func() {
		nd.http.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := nd.pool.Close(ctx); err != nil {
			t.Errorf("pool close: %v", err)
		}
		cancel()
		nd.state.close()
	})
	return nd
}

func getMetrics(t *testing.T, url string) metricsView {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsView
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestClusterDynamicJoin: a singleton seed started with -peers and two
// joiners started with -join converge to one 3-member view with quorum
// 2, and a job submitted to the last joiner commits through the
// dynamically-formed group. This is the production newClusterState path
// end to end: real TCP listeners on ephemeral ports, addresses learned
// through the gossip, no pre-meshing.
func TestClusterDynamicJoin(t *testing.T) {
	seed := startDaemon(t, clusterOptions{
		node:           1,
		peers:          peerSpec{1: "127.0.0.1:0"},
		gossipInterval: 25 * time.Millisecond,
		suspicionMult:  5,
	})
	nodes := []*clusterNode{seed}
	for _, id := range []ids.NodeID{2, 3} {
		nodes = append(nodes, startDaemon(t, clusterOptions{
			node:           id,
			join:           peerSpec{1: seed.state.tcp.Addr()},
			listen:         "127.0.0.1:0",
			gossipInterval: 25 * time.Millisecond,
			suspicionMult:  5,
		}))
	}

	deadline := time.Now().Add(10 * time.Second)
	for _, nd := range nodes {
		for {
			m := getMetrics(t, nd.http.URL)
			if c := m.Cluster; c != nil && c.MembersAlive == 3 && c.Quorum == 2 && len(c.Members) == 3 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never converged to the 3-member view: %+v",
					nd.state.node, getMetrics(t, nd.http.URL).Cluster)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// The joiner commits through the grown quorum, not its group-of-one
	// bootstrap view.
	input := make([]int, 200)
	for i := range input {
		input[i] = len(input) - i
	}
	resp, v := postJSON(t, nodes[2].http.URL+"/jobs?wait=1", submitRequest{
		Kind:  "sort",
		Input: input,
	})
	if resp.StatusCode != http.StatusOK || v.Status != "done" {
		t.Fatalf("joiner job: status=%d %q (error %q)", resp.StatusCode, v.Status, v.Error)
	}
	m := getMetrics(t, nodes[2].http.URL)
	if m.Cluster.ConsensusCommits != 1 {
		t.Fatalf("consensus_commits = %d, want 1", m.Cluster.ConsensusCommits)
	}
	if m.Cluster.Epoch < 2 {
		t.Fatalf("epoch = %d after two joins, want ≥ 2", m.Cluster.Epoch)
	}

	// The operator debug endpoint reflects the converged view.
	hr, err := http.Get(nodes[0].http.URL + "/debug/members")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var dbg struct {
		Epoch     int64 `json:"epoch"`
		RingNodes int   `json:"ring_nodes"`
		Members   []struct {
			Node ids.NodeID `json:"node"`
		} `json:"members"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	seen := map[ids.NodeID]bool{}
	for _, mm := range dbg.Members {
		seen[mm.Node] = true
	}
	if hr.StatusCode != http.StatusOK || dbg.RingNodes != 3 || len(seen) != 3 {
		t.Fatalf("/debug/members: status=%d %+v", hr.StatusCode, dbg)
	}
}

// TestClusterConsensusCommit: a job submitted to one node of a 3-node
// group commits through majority consensus — with one voter killed mid-
// block, the remaining quorum of 2 still decides, and exactly one
// alternative commits.
func TestClusterConsensusCommit(t *testing.T) {
	nodes := testCluster(t, 3)

	// Kill node 3's voter as the job runs: quorum is 2 of 3.
	go func() {
		time.Sleep(10 * time.Millisecond)
		nodes[2].state.voter.Stop()
	}()

	input := make([]int, 500)
	for i := range input {
		input[i] = len(input) - i
	}
	resp, v := postJSON(t, nodes[0].http.URL+"/jobs?wait=1", submitRequest{
		Kind:         "sort",
		Input:        input,
		PerCompareNS: int64(20 * time.Microsecond),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %+v", resp.StatusCode, v)
	}
	if v.Status != "done" {
		t.Fatalf("job status = %q (error %q), want done", v.Status, v.Error)
	}

	m := getMetrics(t, nodes[0].http.URL)
	if m.Cluster == nil {
		t.Fatal("metrics missing cluster section")
	}
	if m.Cluster.ConsensusCommits != 1 {
		t.Fatalf("consensus_commits = %d, want exactly 1 (at-most-one per block)", m.Cluster.ConsensusCommits)
	}
	if m.Cluster.Ballots < 1 {
		t.Fatalf("ballots = %d, want ≥ 1", m.Cluster.Ballots)
	}
	if m.Cluster.Quorum != 2 || len(m.Cluster.Members) != 3 {
		t.Fatalf("cluster view = %+v", m.Cluster)
	}
	if m.Cluster.Net.MsgsSent == 0 {
		t.Fatal("consensus over TCP must account sent messages")
	}
}

// TestClusterRForkForwarding: a busy node forwards an ?rfork=1 job to
// the least-loaded peer as a shipped checkpoint image; the peer rebuilds
// and runs it under its own consensus key.
func TestClusterRForkForwarding(t *testing.T) {
	nodes := testCluster(t, 3)

	// Occupy node 1 with a slow job so a peer is strictly less loaded.
	slow := make([]int, 3000)
	for i := range slow {
		slow[i] = len(slow) - i
	}
	if resp, _ := postJSON(t, nodes[0].http.URL+"/jobs", submitRequest{
		Kind:         "sort",
		Input:        slow,
		PerCompareNS: int64(30 * time.Microsecond),
	}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("slow job status = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(10 * time.Second)
	forwarded := false
	for !forwarded {
		if time.Now().After(deadline) {
			t.Fatal("rfork submission never forwarded")
		}
		resp, _ := postJSON(t, nodes[0].http.URL+"/jobs?rfork=1", submitRequest{
			Kind:  "sort",
			Input: []int{9, 7, 8},
		})
		if resp.StatusCode == http.StatusAccepted {
			forwarded = nodes[0].state.rforksOut.Load() > 0
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Some peer received the image, rebuilt the job, and completed it —
	// and its flight recorder carries the origin node's stitch ID, so
	// the two nodes' timelines join on one key.
	for time.Now().Before(deadline) {
		for _, nd := range nodes[1:] {
			if nd.state.rforksIn.Load() == 0 || nd.pool.Stats().JobsCompleted == 0 {
				continue
			}
			for _, tl := range nd.rec.Recent() {
				if strings.HasPrefix(tl.TraceID, "n1-r") {
					return
				}
			}
			t.Fatalf("forwarded job ran without the origin stitch ID: %+v", nd.rec.Recent())
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no peer completed the forwarded job")
}
