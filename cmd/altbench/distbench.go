package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"altrun/internal/checkpoint"
	"altrun/internal/consensus"
	"altrun/internal/core"
	"altrun/internal/ids"
	"altrun/internal/mem"
	"altrun/internal/page"
	"altrun/internal/serve"
	"altrun/internal/stats"
	"altrun/internal/trace"
	"altrun/internal/transport"
)

// distbench measures what distributed commit costs: the same closed-
// loop alternative-block workload is run with the local in-process
// arbiter, with every block's commit decided by its own majority-
// consensus ballot, and with commits coalesced into batched quorum
// rounds (group commit) across a real TCP peer group of 1, 3, and 5
// nodes (§3.2.1). At 3 and 5 nodes one voter is crashed mid-run: the
// quorum holds and the remaining blocks keep committing. Rows carry
// commit latency (p50/p95), committed blocks per second, and the
// transport's message/byte/RTT accounting. A final section ships a
// stream of rfork-style checkpoint images through the delta shipper to
// measure full-vs-delta bytes per job.
//
// Usage: altbench distbench [-quick] [-levels 1,3,5] [-minratio R] [-o BENCH_dist.json]

// distLevelResult is one (nodes, mode) row.
type distLevelResult struct {
	Nodes        int                `json:"nodes"`
	Mode         string             `json:"mode"` // "local", "consensus", or "consensus-batch"
	Jobs         int                `json:"jobs"`
	P50MS        float64            `json:"p50_ms"`
	P95MS        float64            `json:"p95_ms"`
	MeanMS       float64            `json:"mean_ms"`
	Throughput   float64            `json:"committed_blocks_per_sec"`
	VoterCrashed bool               `json:"voter_crashed,omitempty"`
	Net          *trace.NetSnapshot `json:"net,omitempty"`
}

// distShipResult measures rfork delta shipping: a warm lineage's
// bytes/job against the full-image cost.
type distShipResult struct {
	Jobs             int     `json:"jobs"`
	ArenaBytes       int     `json:"arena_bytes"`
	PageSize         int     `json:"page_size"`
	FullShips        int64   `json:"full_ships"`
	DeltaShips       int64   `json:"delta_ships"`
	FullShipBytes    int64   `json:"full_ship_bytes"`
	DeltaShipBytes   int64   `json:"delta_ship_bytes"`
	FullBytesPerJob  float64 `json:"full_bytes_per_job"`
	DeltaBytesPerJob float64 `json:"delta_bytes_per_job"`
	FullToDeltaRatio float64 `json:"full_to_delta_ratio"`
}

// distBenchReport is the BENCH_dist.json document.
type distBenchReport struct {
	reportMeta
	Clients int               `json:"clients"`
	Levels  []distLevelResult `json:"levels"`
	Ship    *distShipResult   `json:"rfork_ship,omitempty"`
}

const (
	distbenchClients = 8
	distbenchSeed    = 7
)

// distbenchJob is the synthetic block: two correct alternatives of
// distinct costs racing for one commit.
func distbenchJob(seq int) serve.Job {
	work := func(d time.Duration) func(w *core.World) error {
		return func(w *core.World) error {
			deadline := time.Now().Add(d)
			for time.Now().Before(deadline) {
				if w.Cancelled() {
					return errors.New("cancelled")
				}
				time.Sleep(200 * time.Microsecond)
			}
			return w.WriteUint64(0, uint64(seq))
		}
	}
	return serve.Job{
		Kind: "distbench",
		Name: fmt.Sprintf("block-%d", seq),
		Alts: []core.Alt{
			{Name: "fast", Body: work(time.Millisecond)},
			{Name: "slow", Body: work(3 * time.Millisecond)},
		},
		SpaceSize: 4096,
		Deadline:  30 * time.Second,
	}
}

// Commit-arbiter modes A/B-ed per node count.
const (
	distModeLocal = "local"
	distModeCons  = "consensus"       // one quorum round per claim
	distModeBatch = "consensus-batch" // group commit: coalesced rounds
)

// runDistLevel runs one (nodes, mode) measurement. In the consensus
// modes a voter runs on every fleet member and each job's block claims
// a quorum from node 1 — per-claim ballots in distModeCons, coalesced
// group-commit rounds in distModeBatch; crashVoter kills the last
// member's voter once half the jobs are in.
func runDistLevel(nodes, jobs int, mode string, crashVoter bool) (distLevelResult, error) {
	res := distLevelResult{Nodes: nodes, Mode: mode}
	consensusMode := mode != distModeLocal

	fleet, err := transport.NewTCPFleet(nodes, distbenchSeed)
	if err != nil {
		return res, err
	}
	defer fleet.Close()
	eps := fleet.Endpoints()
	members := make([]ids.NodeID, len(eps))
	var voters []*consensus.Voter
	for i, ep := range eps {
		members[i] = ep.ID()
		if consensusMode {
			voters = append(voters, consensus.StartVoter(ep, ""))
		}
	}
	defer func() {
		for _, v := range voters {
			v.Stop()
		}
	}()

	cfg := serve.Config{
		Workers:    distbenchClients,
		SpecTokens: 2 * distbenchClients,
		MaxDegree:  2,
		QueueDepth: 2 * distbenchClients,
	}
	ccfg := consensus.Config{Net: fleet.Counters()}
	switch mode {
	case distModeCons:
		cfg.NewClaim = func(job serve.Job, id uint64) core.ClaimFunc {
			key := fmt.Sprintf("bench/%s/%d", job.Name, id)
			cl := consensus.NewClaimant(key, eps[0], members, "", ccfg)
			return func(w *core.World) bool {
				return cl.Claim(transport.Background(), w.PID()).Won
			}
		}
	case distModeBatch:
		co := consensus.StartCoalescer(eps[0], members, "", ccfg)
		defer co.Stop()
		cfg.NewClaim = func(job serve.Job, id uint64) core.ClaimFunc {
			key := fmt.Sprintf("bench/%s/%d", job.Name, id)
			return func(w *core.World) bool {
				return co.Claim(transport.Background(), key, w.PID()).Won
			}
		}
	}
	pool, err := serve.NewPool(cfg)
	if err != nil {
		return res, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = pool.Close(ctx)
	}()

	var (
		mu        sync.Mutex
		latencies stats.Sample
		firstErr  error
		submitted int
		crashOnce sync.Once
	)
	jobsPerClient := jobs / distbenchClients
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < distbenchClients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			for j := 0; j < jobsPerClient; j++ {
				mu.Lock()
				submitted++
				half := submitted >= jobs/2
				mu.Unlock()
				if half && crashVoter && len(voters) > 0 {
					crashOnce.Do(func() {
						voters[len(voters)-1].Stop()
						res.VoterCrashed = true
					})
				}
				tk, err := pool.Submit(distbenchJob(client*jobsPerClient + j))
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("client %d submit: %w", client, err)
					}
					mu.Unlock()
					return
				}
				r, err := tk.Wait(ctx)
				if err != nil || r.Status != serve.StatusDone {
					mu.Lock()
					if firstErr == nil {
						if err == nil {
							err = fmt.Errorf("status %v: %w", r.Status, r.Err)
						}
						firstErr = fmt.Errorf("client %d job %d: %w", client, j, err)
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				latencies.Add(float64(r.Elapsed.Nanoseconds()) / 1e6)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return res, firstErr
	}

	p50, err := latencies.Percentile(50)
	if err != nil {
		return res, err
	}
	p95, err := latencies.Percentile(95)
	if err != nil {
		return res, err
	}
	res.Jobs = latencies.N()
	res.P50MS = p50
	res.P95MS = p95
	res.MeanMS = latencies.Mean()
	res.Throughput = float64(latencies.N()) / elapsed.Seconds()
	if consensusMode {
		snap := fleet.Counters().Snapshot()
		res.Net = &snap
	}
	return res, nil
}

// runDistShip measures rfork delta economics over a two-node TCP pair:
// the same fixed-size arena altserved uses, a stream of distinct JSON
// request bodies, one full base then per-job deltas. The interesting
// number is warm-path bytes/job: full-image cost over mean delta cost.
func runDistShip(jobs int) (*distShipResult, error) {
	const (
		pageSize  = 512
		arenaSize = 16 << 10
		lineage   = "rfork/json"
	)
	fleet, err := transport.NewTCPFleet(2, distbenchSeed)
	if err != nil {
		return nil, err
	}
	defer fleet.Close()
	eps := fleet.Endpoints()
	nc := fleet.Counters()

	// Receiver service on node 2: reconstruct each shipped image and
	// acknowledge it so the sender can pace the stream.
	recv := checkpoint.NewReceiver(eps[1], nc, 0)
	inbox := eps[1].Bind(checkpoint.RForkPort)
	got := make(chan int64, jobs)
	svc := eps[1].Spawn("distship-recv", func(p transport.Proc) {
		for {
			env, ok := inbox.Recv(p)
			if !ok {
				return
			}
			if img, ok := recv.Handle(env); ok {
				got <- img.Control["seq"]
			}
		}
	})
	defer svc.Kill()

	shipper := checkpoint.NewShipper(eps[0], nc)
	arena := mem.New(page.NewStore(pageSize), arenaSize)
	prevLen := 0
	var dirty []int64
	for i := 0; i < jobs; i++ {
		body := []byte(fmt.Sprintf(`{"kind":"distbench","name":"block-%d","input":[%d,%d,%d]}`, i, i*7, i*3, i))
		if err := arena.WriteAt(body, 0); err != nil {
			return nil, err
		}
		if len(body) < prevLen {
			if err := arena.WriteAt(make([]byte, prevLen-len(body)), int64(len(body))); err != nil {
				return nil, err
			}
		}
		prevLen = len(body)
		img, err := checkpoint.Capture(ids.PID(i+1), "rfork-job", arena, map[string]int64{
			"len": int64(len(body)), "seq": int64(i),
		})
		if err != nil {
			return nil, err
		}
		dirty = arena.DirtyPageList(dirty[:0])
		if _, _, err := shipper.Ship(transport.Background(), eps[1].ID(), lineage, img, dirty); err != nil {
			return nil, err
		}
		select {
		case <-got:
		case <-time.After(10 * time.Second):
			return nil, fmt.Errorf("ship %d: receiver did not reconstruct within 10s", i)
		}
	}

	snap := nc.Snapshot()
	res := &distShipResult{
		Jobs:           jobs,
		ArenaBytes:     arenaSize,
		PageSize:       pageSize,
		FullShips:      snap.FullShips,
		DeltaShips:     snap.DeltaShips,
		FullShipBytes:  snap.FullShipBytes,
		DeltaShipBytes: snap.DeltaShipBytes,
	}
	if res.FullShips > 0 {
		res.FullBytesPerJob = float64(res.FullShipBytes) / float64(res.FullShips)
	}
	if res.DeltaShips > 0 {
		res.DeltaBytesPerJob = float64(res.DeltaShipBytes) / float64(res.DeltaShips)
	}
	if res.DeltaBytesPerJob > 0 {
		res.FullToDeltaRatio = res.FullBytesPerJob / res.DeltaBytesPerJob
	}
	return res, nil
}

// parseLevels turns "1,3,5" into node counts.
func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad node count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty levels spec %q", s)
	}
	return out, nil
}

// runDistbench is the `altbench distbench` entry point.
func runDistbench(args []string) error {
	fs := flag.NewFlagSet("distbench", flag.ContinueOnError)
	out := fs.String("o", "BENCH_dist.json", "output JSON path ('-' for stdout only)")
	quick := fs.Bool("quick", false, "CI smoke mode: few jobs per level")
	levelSpec := fs.String("levels", "1,3,5", "comma-separated peer-group sizes to measure")
	minRatio := fs.Float64("minratio", 0, "fail unless consensus-batch/local throughput at every multi-node level is at least this (0 = no gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	levels, err := parseLevels(*levelSpec)
	if err != nil {
		return err
	}

	jobs := 96
	if *quick {
		jobs = 16
	}

	fmt.Println("distbench — local vs per-claim vs group-commit consensus over real TCP peer groups")
	fmt.Printf("%-6s %-16s %6s %10s %10s %10s %12s %8s %10s %8s\n",
		"nodes", "mode", "jobs", "p50 ms", "p95 ms", "mean ms", "blocks/s", "crashed", "msgs", "rounds")
	var results []distLevelResult
	local := map[int]float64{} // nodes → local-mode throughput
	for _, nodes := range levels {
		for _, mode := range []string{distModeLocal, distModeCons, distModeBatch} {
			crash := mode != distModeLocal && nodes >= 3
			res, err := runDistLevel(nodes, jobs, mode, crash)
			if err != nil {
				return fmt.Errorf("nodes=%d mode=%s: %w", nodes, mode, err)
			}
			results = append(results, res)
			if mode == distModeLocal {
				local[nodes] = res.Throughput
			}
			var msgs, rounds int64
			if res.Net != nil {
				msgs, rounds = res.Net.MsgsSent, res.Net.BallotRounds
			}
			fmt.Printf("%-6d %-16s %6d %10.2f %10.2f %10.2f %12.1f %8v %10d %8d\n",
				res.Nodes, res.Mode, res.Jobs, res.P50MS, res.P95MS, res.MeanMS,
				res.Throughput, res.VoterCrashed, msgs, rounds)
		}
	}
	fmt.Println("\nconsensus rows include transport accounting; a crashed voter at n≥3 leaves the quorum intact")

	ship, err := runDistShip(jobs)
	if err != nil {
		return fmt.Errorf("rfork ship measurement: %w", err)
	}
	fmt.Printf("\nrfork delta shipping (%d jobs, %dB arena, %dB pages): full %d×%.0fB, delta %d×%.0fB — %.1f× fewer bytes/job warm\n",
		ship.Jobs, ship.ArenaBytes, ship.PageSize,
		ship.FullShips, ship.FullBytesPerJob, ship.DeltaShips, ship.DeltaBytesPerJob, ship.FullToDeltaRatio)

	if err := writeReport(*out, distBenchReport{
		reportMeta: newReportMeta(),
		Clients:    distbenchClients,
		Levels:     results,
		Ship:       ship,
	}); err != nil {
		return err
	}

	if *minRatio > 0 {
		for _, res := range results {
			if res.Mode != distModeBatch || res.Nodes < 2 {
				continue
			}
			base := local[res.Nodes]
			if base <= 0 {
				continue
			}
			if ratio := res.Throughput / base; ratio < *minRatio {
				return fmt.Errorf("consensus-batch/local throughput at n=%d is %.2f, below the %.2f gate",
					res.Nodes, ratio, *minRatio)
			}
			fmt.Printf("gate: n=%d consensus-batch/local = %.2f (>= %.2f)\n",
				res.Nodes, res.Throughput/base, *minRatio)
		}
	}
	return nil
}
