package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"altrun/internal/checkpoint"
	"altrun/internal/consensus"
	"altrun/internal/core"
	"altrun/internal/ids"
	"altrun/internal/mem"
	"altrun/internal/membership"
	"altrun/internal/page"
	"altrun/internal/serve"
	"altrun/internal/stats"
	"altrun/internal/trace"
	"altrun/internal/transport"
)

// distbench measures what distributed commit costs: the same closed-
// loop alternative-block workload is run with the local in-process
// arbiter, with every block's commit decided by its own majority-
// consensus ballot, and with commits coalesced into batched quorum
// rounds (group commit) across a real TCP peer group of 1, 3, and 5
// nodes (§3.2.1). At 3 and 5 nodes one voter is crashed mid-run: the
// quorum holds and the remaining blocks keep committing. Rows carry
// commit latency (p50/p95), committed blocks per second, and the
// transport's message/byte/RTT accounting. A final section ships a
// stream of rfork-style checkpoint images through the delta shipper to
// measure full-vs-delta bytes per job.
//
// Usage: altbench distbench [-quick] [-levels 1,3,5] [-minratio R] [-o BENCH_dist.json]

// distLevelResult is one (nodes, mode) row.
type distLevelResult struct {
	Nodes        int                `json:"nodes"`
	Mode         string             `json:"mode"` // "local", "consensus", or "consensus-batch"
	Jobs         int                `json:"jobs"`
	P50MS        float64            `json:"p50_ms"`
	P95MS        float64            `json:"p95_ms"`
	MeanMS       float64            `json:"mean_ms"`
	Throughput   float64            `json:"committed_blocks_per_sec"`
	VoterCrashed bool               `json:"voter_crashed,omitempty"`
	Net          *trace.NetSnapshot `json:"net,omitempty"`
}

// distShipResult measures rfork delta shipping: a warm lineage's
// bytes/job against the full-image cost.
type distShipResult struct {
	Jobs             int     `json:"jobs"`
	ArenaBytes       int     `json:"arena_bytes"`
	PageSize         int     `json:"page_size"`
	FullShips        int64   `json:"full_ships"`
	DeltaShips       int64   `json:"delta_ships"`
	FullShipBytes    int64   `json:"full_ship_bytes"`
	DeltaShipBytes   int64   `json:"delta_ship_bytes"`
	FullBytesPerJob  float64 `json:"full_bytes_per_job"`
	DeltaBytesPerJob float64 `json:"delta_bytes_per_job"`
	FullToDeltaRatio float64 `json:"full_to_delta_ratio"`
}

// distChurnResult is one kill/restart run over a gossiped peer group:
// throughput in three phases (steady, two nodes dead, rejoined), the
// membership layer's detection and rejoin latencies, and the rfork
// placement success rate through the schedule.
type distChurnResult struct {
	Nodes          int     `json:"nodes"`
	Killed         int     `json:"killed"`
	PhaseSec       float64 `json:"phase_sec"`
	SteadyBPS      float64 `json:"steady_blocks_per_sec"`
	ChurnBPS       float64 `json:"churn_blocks_per_sec"`
	RecoveredBPS   float64 `json:"recovered_blocks_per_sec"`
	ChurnRatio     float64 `json:"churn_ratio"` // churn/steady throughput
	DetectMS       float64 `json:"detect_ms"`   // kill → both deaths gossiped to node 1
	RejoinMS       float64 `json:"rejoin_ms"`   // restart → full view at node 1
	FinalEpoch     int64   `json:"final_epoch"`
	RForkAttempts  int64   `json:"rfork_attempts"`
	RForkDelivered int64   `json:"rfork_delivered"`
	RForkFallbacks int64   `json:"rfork_local_fallbacks"`
	RForkSuccess   float64 `json:"rfork_success"` // (delivered+fallback)/attempts
	BlocksLost     int64   `json:"blocks_lost"`   // jobs whose block lost its claim outright
	GossipMsgs     int64   `json:"gossip_msgs"`
	GossipBytes    int64   `json:"gossip_bytes"`
}

// distBenchReport is the BENCH_dist.json document.
type distBenchReport struct {
	reportMeta
	Clients int               `json:"clients"`
	Levels  []distLevelResult `json:"levels"`
	Churn   []distChurnResult `json:"churn,omitempty"`
	Ship    *distShipResult   `json:"rfork_ship,omitempty"`
}

const (
	distbenchClients = 8
	distbenchSeed    = 7
)

// distbenchJob is the synthetic block: two correct alternatives of
// distinct costs racing for one commit.
func distbenchJob(seq int) serve.Job {
	work := func(d time.Duration) func(w *core.World) error {
		return func(w *core.World) error {
			deadline := time.Now().Add(d)
			for time.Now().Before(deadline) {
				if w.Cancelled() {
					return errors.New("cancelled")
				}
				time.Sleep(200 * time.Microsecond)
			}
			return w.WriteUint64(0, uint64(seq))
		}
	}
	return serve.Job{
		Kind: "distbench",
		Name: fmt.Sprintf("block-%d", seq),
		Alts: []core.Alt{
			{Name: "fast", Body: work(time.Millisecond)},
			{Name: "slow", Body: work(3 * time.Millisecond)},
		},
		SpaceSize: 4096,
		Deadline:  30 * time.Second,
	}
}

// Commit-arbiter modes A/B-ed per node count.
const (
	distModeLocal = "local"
	distModeCons  = "consensus"       // one quorum round per claim
	distModeBatch = "consensus-batch" // group commit: coalesced rounds
)

// runDistLevel runs one (nodes, mode) measurement. In the consensus
// modes a voter runs on every fleet member and each job's block claims
// a quorum from node 1 — per-claim ballots in distModeCons, coalesced
// group-commit rounds in distModeBatch; crashVoter kills the last
// member's voter once half the jobs are in.
func runDistLevel(nodes, jobs int, mode string, crashVoter bool) (distLevelResult, error) {
	res := distLevelResult{Nodes: nodes, Mode: mode}
	consensusMode := mode != distModeLocal

	fleet, err := transport.NewTCPFleet(nodes, distbenchSeed)
	if err != nil {
		return res, err
	}
	defer fleet.Close()
	eps := fleet.Endpoints()
	members := make([]ids.NodeID, len(eps))
	var voters []*consensus.Voter
	for i, ep := range eps {
		members[i] = ep.ID()
		if consensusMode {
			voters = append(voters, consensus.StartVoter(ep, ""))
		}
	}
	defer func() {
		for _, v := range voters {
			v.Stop()
		}
	}()

	cfg := serve.Config{
		Workers:    distbenchClients,
		SpecTokens: 2 * distbenchClients,
		MaxDegree:  2,
		QueueDepth: 2 * distbenchClients,
	}
	ccfg := consensus.Config{Net: fleet.Counters()}
	switch mode {
	case distModeCons:
		cfg.NewClaim = func(job serve.Job, id uint64) core.ClaimFunc {
			key := fmt.Sprintf("bench/%s/%d", job.Name, id)
			cl := consensus.NewClaimant(key, eps[0], members, "", ccfg)
			return func(w *core.World) bool {
				return cl.Claim(transport.Background(), w.PID()).Won
			}
		}
	case distModeBatch:
		co := consensus.StartCoalescer(eps[0], members, "", ccfg)
		defer co.Stop()
		cfg.NewClaim = func(job serve.Job, id uint64) core.ClaimFunc {
			key := fmt.Sprintf("bench/%s/%d", job.Name, id)
			return func(w *core.World) bool {
				return co.Claim(transport.Background(), key, w.PID()).Won
			}
		}
	}
	pool, err := serve.NewPool(cfg)
	if err != nil {
		return res, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = pool.Close(ctx)
	}()

	var (
		mu        sync.Mutex
		latencies stats.Sample
		firstErr  error
		submitted int
		crashOnce sync.Once
	)
	jobsPerClient := jobs / distbenchClients
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < distbenchClients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			for j := 0; j < jobsPerClient; j++ {
				mu.Lock()
				submitted++
				half := submitted >= jobs/2
				mu.Unlock()
				if half && crashVoter && len(voters) > 0 {
					crashOnce.Do(func() {
						voters[len(voters)-1].Stop()
						res.VoterCrashed = true
					})
				}
				tk, err := pool.Submit(distbenchJob(client*jobsPerClient + j))
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("client %d submit: %w", client, err)
					}
					mu.Unlock()
					return
				}
				r, err := tk.Wait(ctx)
				if err != nil || r.Status != serve.StatusDone {
					mu.Lock()
					if firstErr == nil {
						if err == nil {
							err = fmt.Errorf("status %v: %w", r.Status, r.Err)
						}
						firstErr = fmt.Errorf("client %d job %d: %w", client, j, err)
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				latencies.Add(float64(r.Elapsed.Nanoseconds()) / 1e6)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return res, firstErr
	}

	p50, err := latencies.Percentile(50)
	if err != nil {
		return res, err
	}
	p95, err := latencies.Percentile(95)
	if err != nil {
		return res, err
	}
	res.Jobs = latencies.N()
	res.P50MS = p50
	res.P95MS = p95
	res.MeanMS = latencies.Mean()
	res.Throughput = float64(latencies.N()) / elapsed.Seconds()
	if consensusMode {
		snap := fleet.Counters().Snapshot()
		res.Net = &snap
	}
	return res, nil
}

// runDistChurn drives a gossiped peer group of n nodes through a
// kill/restart schedule: membership agents and voters on every member,
// coalescers on four submitter nodes re-deriving their quorum from each
// ViewUpdate, a closed-loop block workload committing through group
// consensus, and an rfork driver shipping checkpoint images to ring-
// picked peers. Phase 1 is steady state; at phase 2 the two highest
// non-submitter nodes are crashed (voter and agent stopped, transport
// isolated); at phase 3 they are healed and rejoin through the -join
// handshake. The interesting numbers are the churn-phase throughput
// ratio and the rfork delivery rate across the failure window.
func runDistChurn(nodes int, phase time.Duration) (distChurnResult, error) {
	const (
		killCount  = 2
		submitters = 4
		rforkPace  = 10 * time.Millisecond
	)
	// Generous probe/suspicion constants, scaled with the group: the
	// workload saturates the box, and a delayed ack must not read as a
	// death — false suspicions flap the view and the epoch, which is
	// noise here. Large in-process groups oversubscribe the scheduler
	// hardest, so they get slower probes and a longer refutation
	// window, and each phase stretches to cover the suspicion timeout.
	probeInterval := 100 * time.Millisecond
	suspicionMult := 6
	if nodes > 32 {
		probeInterval = 250 * time.Millisecond
		suspicionMult = 8
	}
	suspicion := time.Duration(suspicionMult) * probeInterval
	if minPhase := 3 * suspicion; phase < minPhase {
		phase = minPhase
	}
	res := distChurnResult{Nodes: nodes, Killed: killCount, PhaseSec: phase.Seconds()}
	if nodes < submitters+killCount+2 {
		return res, fmt.Errorf("churn needs at least %d nodes, got %d", submitters+killCount+2, nodes)
	}
	fleet, err := transport.NewTCPFleet(nodes, distbenchSeed)
	if err != nil {
		return res, err
	}
	defer fleet.Close()
	eps := fleet.Endpoints()
	members := make([]ids.NodeID, nodes)
	static := make([]membership.Peer, nodes)
	for i, ep := range eps {
		members[i] = ep.ID()
		static[i] = membership.Peer{ID: ep.ID()}
	}

	voters := make([]*consensus.Voter, nodes)
	for i, ep := range eps {
		voters[i] = consensus.StartVoter(ep, "")
	}
	ccfg := consensus.Config{Net: fleet.Counters()}
	cos := make([]*consensus.Coalescer, submitters)
	for i := 0; i < submitters; i++ {
		cos[i] = consensus.StartCoalescer(eps[i], members, "", ccfg)
	}
	defer func() {
		for _, co := range cos {
			co.Stop()
		}
		for _, v := range voters {
			v.Stop()
		}
	}()

	// Every node reconstructs shipped rfork images; delivery is counted
	// at the receivers, so a ship dropped on the floor by an isolated
	// node's partition never counts.
	var delivered atomic.Int64
	recvSvcs := make([]transport.Handle, nodes)
	for i, ep := range eps {
		recv := checkpoint.NewReceiver(ep, fleet.Counters(), 0)
		inbox := ep.Bind(checkpoint.RForkPort)
		recvSvcs[i] = ep.Spawn(fmt.Sprintf("churn-recv-%d", i+1), func(p transport.Proc) {
			for {
				env, ok := inbox.Recv(p)
				if !ok {
					return
				}
				if _, ok := recv.Handle(env); ok {
					delivered.Add(1)
				}
			}
		})
	}
	defer func() {
		for _, svc := range recvSvcs {
			svc.Kill()
		}
	}()

	mc := make([]*membership.Counters, nodes)
	agents := make([]*membership.Agent, nodes)
	agentCfg := func(i int, join []membership.Peer) membership.Config {
		cfg := membership.Config{
			Join:          join,
			ProbeInterval: probeInterval,
			SuspicionMult: suspicionMult,
			Counters:      mc[i],
			OnView: func(v membership.View) {
				// Epoch-fenced reconfiguration, exactly as altserved
				// wires it: fence the voter, re-derive the quorum.
				voters[i].SetEpoch(v.Epoch)
				if i < submitters {
					cos[i].SetView(v.Epoch, v.Members)
				}
			},
		}
		if join == nil {
			cfg.Static = static
		}
		return cfg
	}
	for i, ep := range eps {
		mc[i] = &membership.Counters{}
		agents[i] = membership.Start(ep, agentCfg(i, nil))
	}
	defer func() {
		for _, a := range agents {
			a.Stop()
		}
	}()

	// Closed-loop block workload: claims hash across the submitters'
	// coalescers, so every commit is a batched quorum round over the
	// live view.
	pool, err := serve.NewPool(serve.Config{
		Workers:    distbenchClients,
		SpecTokens: 2 * distbenchClients,
		MaxDegree:  2,
		QueueDepth: 2 * distbenchClients,
		NewClaim: func(job serve.Job, id uint64) core.ClaimFunc {
			co := cos[int(id)%submitters]
			key := fmt.Sprintf("churn/%s/%d", job.Name, id)
			return func(w *core.World) bool {
				return co.Claim(transport.Background(), key, w.PID()).Won
			}
		},
	})
	if err != nil {
		return res, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = pool.Close(ctx)
	}()

	var (
		completed atomic.Int64
		lost      atomic.Int64
		errMu     sync.Mutex
		firstErr  error
		stop      = make(chan struct{})
		wg        sync.WaitGroup
	)
	failWith := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for c := 0; c < distbenchClients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				tk, err := pool.Submit(distbenchJob(client*1_000_000 + seq))
				if err != nil {
					failWith(fmt.Errorf("client %d submit: %w", client, err))
					return
				}
				r, err := tk.Wait(ctx)
				if err != nil {
					failWith(fmt.Errorf("client %d block %d: %w", client, seq, err))
					return
				}
				if r.Status == serve.StatusDone {
					completed.Add(1)
				} else {
					// A block whose claims all exhausted their retries
					// under the churn: at-most-one-commit held (nobody
					// committed), so it is a counted loss, not an abort.
					lost.Add(1)
				}
			}
		}(c)
	}

	// RFork driver: consistent-hash placement over node 1's live view,
	// one full image per attempt; no eligible peer means a counted
	// local fallback (the altserved behavior), never a stall.
	var attempts, fallbacks atomic.Int64
	shipper := checkpoint.NewShipper(eps[0], fleet.Counters())
	rforkDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		arena := mem.New(page.NewStore(512), 4096)
		for seq := 0; ; seq++ {
			select {
			case <-rforkDone:
				return
			case <-time.After(rforkPace):
			}
			key := fmt.Sprintf("rfork/churn-%d", seq)
			attempts.Add(1)
			to, ok := agents[0].Pick(key, func(m membership.Member) bool {
				return m.Node != eps[0].ID()
			})
			if !ok {
				fallbacks.Add(1)
				continue
			}
			body := []byte(fmt.Sprintf(`{"kind":"distbench","seq":%d}`, seq))
			if err := arena.WriteAt(body, 0); err != nil {
				failWith(err)
				return
			}
			img, err := checkpoint.Capture(ids.PID(seq+1), "rfork-churn", arena, map[string]int64{"seq": int64(seq)})
			if err != nil {
				failWith(err)
				return
			}
			// Fresh lineage per attempt: every ship is a standalone full
			// image, so delivery accounting never depends on a peer's
			// delta base surviving the partition.
			if _, _, err := shipper.Ship(transport.Background(), to, key, img, nil); err != nil {
				failWith(err)
				return
			}
		}
	}()

	await := func(what string, timeout time.Duration, cond func() bool) (time.Duration, error) {
		start := time.Now()
		for !cond() {
			if time.Since(start) > timeout {
				return 0, fmt.Errorf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
		return time.Since(start), nil
	}
	countPhase := func() int64 {
		before := completed.Load()
		time.Sleep(phase)
		return completed.Load() - before
	}
	fail := func(err error) (distChurnResult, error) {
		close(stop)
		close(rforkDone)
		wg.Wait()
		return res, err
	}

	// Phase 1: steady state over the full group.
	if _, err := await("initial convergence", 30*time.Second, func() bool {
		alive, _, _ := agents[0].StatusCounts()
		return alive == nodes
	}); err != nil {
		return fail(err)
	}
	res.SteadyBPS = float64(countPhase()) / phase.Seconds()

	// Phase 2: crash the two highest non-submitter nodes.
	killed := []int{nodes - 2, nodes - 1} // slice indexes
	churnStart := time.Now()
	for _, k := range killed {
		agents[k].Stop()
		voters[k].Stop()
		fleet.Isolate(eps[k].ID())
	}
	churnBlocks := completed.Load()
	// Detection is judged on the killed nodes specifically, so an
	// unrelated false suspicion elsewhere in the view cannot satisfy
	// (or pre-satisfy) the condition.
	detect, err := await("death detection", 30*time.Second, func() bool {
		gone := 0
		for _, m := range agents[0].Members() {
			if (m.Node == eps[killed[0]].ID() || m.Node == eps[killed[1]].ID()) &&
				m.Status != membership.StatusAlive && m.Status != membership.StatusSuspect {
				gone++
			}
		}
		return gone == killCount
	})
	if err != nil {
		return fail(err)
	}
	res.DetectMS = float64(detect.Nanoseconds()) / 1e6
	if rest := phase - time.Since(churnStart); rest > 0 {
		time.Sleep(rest)
	}
	res.ChurnBPS = float64(completed.Load()-churnBlocks) / time.Since(churnStart).Seconds()

	// Phase 3: heal and rejoin through the join handshake; the
	// restarted agents refute their own death tombstones.
	for _, k := range killed {
		for _, ep := range eps {
			fleet.Heal(eps[k].ID(), ep.ID())
		}
		voters[k] = consensus.StartVoter(eps[k], "")
		agents[k] = membership.Start(eps[k], agentCfg(k, []membership.Peer{{ID: eps[0].ID()}}))
	}
	// Rejoin is judged on the killed nodes specifically — "are they
	// alive again in node 1's view" — not on a momentarily flap-free
	// whole view, which a saturated box can't promise at large n.
	rejoin, err := await("rejoin convergence", 30*time.Second, func() bool {
		back := 0
		for _, m := range agents[0].Members() {
			if (m.Node == eps[killed[0]].ID() || m.Node == eps[killed[1]].ID()) &&
				m.Status == membership.StatusAlive {
				back++
			}
		}
		return back == killCount
	})
	if err != nil {
		return fail(err)
	}
	res.RejoinMS = float64(rejoin.Nanoseconds()) / 1e6
	res.RecoveredBPS = float64(countPhase()) / phase.Seconds()

	close(stop)
	close(rforkDone)
	wg.Wait()
	errMu.Lock()
	err = firstErr
	errMu.Unlock()
	if err != nil {
		return res, err
	}
	// Let in-flight ships land before reading the delivery counter.
	time.Sleep(200 * time.Millisecond)

	if res.SteadyBPS > 0 {
		res.ChurnRatio = res.ChurnBPS / res.SteadyBPS
	}
	res.FinalEpoch = agents[0].Epoch()
	res.BlocksLost = lost.Load()
	res.RForkAttempts = attempts.Load()
	res.RForkDelivered = delivered.Load()
	res.RForkFallbacks = fallbacks.Load()
	if res.RForkAttempts > 0 {
		res.RForkSuccess = float64(res.RForkDelivered+res.RForkFallbacks) / float64(res.RForkAttempts)
	}
	for _, c := range mc {
		snap := c.Snapshot()
		res.GossipMsgs += snap.GossipMsgs
		res.GossipBytes += snap.GossipBytes
	}
	return res, nil
}

// runDistShip measures rfork delta economics over a two-node TCP pair:
// the same fixed-size arena altserved uses, a stream of distinct JSON
// request bodies, one full base then per-job deltas. The interesting
// number is warm-path bytes/job: full-image cost over mean delta cost.
func runDistShip(jobs int) (*distShipResult, error) {
	const (
		pageSize  = 512
		arenaSize = 16 << 10
		lineage   = "rfork/json"
	)
	fleet, err := transport.NewTCPFleet(2, distbenchSeed)
	if err != nil {
		return nil, err
	}
	defer fleet.Close()
	eps := fleet.Endpoints()
	nc := fleet.Counters()

	// Receiver service on node 2: reconstruct each shipped image and
	// acknowledge it so the sender can pace the stream.
	recv := checkpoint.NewReceiver(eps[1], nc, 0)
	inbox := eps[1].Bind(checkpoint.RForkPort)
	got := make(chan int64, jobs)
	svc := eps[1].Spawn("distship-recv", func(p transport.Proc) {
		for {
			env, ok := inbox.Recv(p)
			if !ok {
				return
			}
			if img, ok := recv.Handle(env); ok {
				got <- img.Control["seq"]
			}
		}
	})
	defer svc.Kill()

	shipper := checkpoint.NewShipper(eps[0], nc)
	arena := mem.New(page.NewStore(pageSize), arenaSize)
	prevLen := 0
	var dirty []int64
	for i := 0; i < jobs; i++ {
		body := []byte(fmt.Sprintf(`{"kind":"distbench","name":"block-%d","input":[%d,%d,%d]}`, i, i*7, i*3, i))
		if err := arena.WriteAt(body, 0); err != nil {
			return nil, err
		}
		if len(body) < prevLen {
			if err := arena.WriteAt(make([]byte, prevLen-len(body)), int64(len(body))); err != nil {
				return nil, err
			}
		}
		prevLen = len(body)
		img, err := checkpoint.Capture(ids.PID(i+1), "rfork-job", arena, map[string]int64{
			"len": int64(len(body)), "seq": int64(i),
		})
		if err != nil {
			return nil, err
		}
		dirty = arena.DirtyPageList(dirty[:0])
		if _, _, err := shipper.Ship(transport.Background(), eps[1].ID(), lineage, img, dirty); err != nil {
			return nil, err
		}
		select {
		case <-got:
		case <-time.After(10 * time.Second):
			return nil, fmt.Errorf("ship %d: receiver did not reconstruct within 10s", i)
		}
	}

	snap := nc.Snapshot()
	res := &distShipResult{
		Jobs:           jobs,
		ArenaBytes:     arenaSize,
		PageSize:       pageSize,
		FullShips:      snap.FullShips,
		DeltaShips:     snap.DeltaShips,
		FullShipBytes:  snap.FullShipBytes,
		DeltaShipBytes: snap.DeltaShipBytes,
	}
	if res.FullShips > 0 {
		res.FullBytesPerJob = float64(res.FullShipBytes) / float64(res.FullShips)
	}
	if res.DeltaShips > 0 {
		res.DeltaBytesPerJob = float64(res.DeltaShipBytes) / float64(res.DeltaShips)
	}
	if res.DeltaBytesPerJob > 0 {
		res.FullToDeltaRatio = res.FullBytesPerJob / res.DeltaBytesPerJob
	}
	return res, nil
}

// parseLevels turns "1,3,5" into node counts.
func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad node count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty levels spec %q", s)
	}
	return out, nil
}

// runDistbench is the `altbench distbench` entry point.
func runDistbench(args []string) error {
	fs := flag.NewFlagSet("distbench", flag.ContinueOnError)
	out := fs.String("o", "BENCH_dist.json", "output JSON path ('-' for stdout only)")
	quick := fs.Bool("quick", false, "CI smoke mode: few jobs per level")
	levelSpec := fs.String("levels", "1,3,5", "comma-separated peer-group sizes to measure")
	minRatio := fs.Float64("minratio", 0, "fail unless consensus-batch/local throughput at every multi-node level is at least this (0 = no gate)")
	churnSpec := fs.String("churnlevels", "16", "comma-separated group sizes for the kill/restart churn runs ('' = skip)")
	churnPhase := fs.Duration("churnphase", 3*time.Second, "duration of each churn phase (steady, killed, rejoined)")
	minChurn := fs.Float64("minchurn", 0, "fail unless churn-phase throughput is at least this fraction of steady state (0 = no gate)")
	minSuccess := fs.Float64("minsuccess", 0, "fail unless the churn rfork success rate is at least this (0 = no gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	levels, err := parseLevels(*levelSpec)
	if err != nil {
		return err
	}
	var churnLevels []int
	if *churnSpec != "" {
		if churnLevels, err = parseLevels(*churnSpec); err != nil {
			return err
		}
	}
	if *quick && *churnPhase > 1500*time.Millisecond {
		*churnPhase = 1500 * time.Millisecond
	}

	jobs := 96
	if *quick {
		jobs = 16
	}

	fmt.Println("distbench — local vs per-claim vs group-commit consensus over real TCP peer groups")
	fmt.Printf("%-6s %-16s %6s %10s %10s %10s %12s %8s %10s %8s\n",
		"nodes", "mode", "jobs", "p50 ms", "p95 ms", "mean ms", "blocks/s", "crashed", "msgs", "rounds")
	var results []distLevelResult
	local := map[int]float64{} // nodes → local-mode throughput
	for _, nodes := range levels {
		for _, mode := range []string{distModeLocal, distModeCons, distModeBatch} {
			crash := mode != distModeLocal && nodes >= 3
			res, err := runDistLevel(nodes, jobs, mode, crash)
			if err != nil {
				return fmt.Errorf("nodes=%d mode=%s: %w", nodes, mode, err)
			}
			results = append(results, res)
			if mode == distModeLocal {
				local[nodes] = res.Throughput
			}
			var msgs, rounds int64
			if res.Net != nil {
				msgs, rounds = res.Net.MsgsSent, res.Net.BallotRounds
			}
			fmt.Printf("%-6d %-16s %6d %10.2f %10.2f %10.2f %12.1f %8v %10d %8d\n",
				res.Nodes, res.Mode, res.Jobs, res.P50MS, res.P95MS, res.MeanMS,
				res.Throughput, res.VoterCrashed, msgs, rounds)
		}
	}
	fmt.Println("\nconsensus rows include transport accounting; a crashed voter at n≥3 leaves the quorum intact")

	var churns []distChurnResult
	if len(churnLevels) > 0 {
		fmt.Println("\nchurn — gossiped membership under a kill/restart schedule (2 nodes crashed, then rejoined)")
		fmt.Printf("%-6s %12s %12s %12s %7s %9s %9s %6s %9s\n",
			"nodes", "steady b/s", "churn b/s", "rejoin b/s", "ratio", "detect", "rejoin", "epoch", "rfork ok")
		for _, nodes := range churnLevels {
			cres, err := runDistChurn(nodes, *churnPhase)
			if err != nil {
				return fmt.Errorf("churn nodes=%d: %w", nodes, err)
			}
			churns = append(churns, cres)
			fmt.Printf("%-6d %12.1f %12.1f %12.1f %7.2f %7.0fms %7.0fms %6d %8.1f%%\n",
				cres.Nodes, cres.SteadyBPS, cres.ChurnBPS, cres.RecoveredBPS, cres.ChurnRatio,
				cres.DetectMS, cres.RejoinMS, cres.FinalEpoch, 100*cres.RForkSuccess)
		}
	}

	ship, err := runDistShip(jobs)
	if err != nil {
		return fmt.Errorf("rfork ship measurement: %w", err)
	}
	fmt.Printf("\nrfork delta shipping (%d jobs, %dB arena, %dB pages): full %d×%.0fB, delta %d×%.0fB — %.1f× fewer bytes/job warm\n",
		ship.Jobs, ship.ArenaBytes, ship.PageSize,
		ship.FullShips, ship.FullBytesPerJob, ship.DeltaShips, ship.DeltaBytesPerJob, ship.FullToDeltaRatio)

	if err := writeReport(*out, distBenchReport{
		reportMeta: newReportMeta(),
		Clients:    distbenchClients,
		Levels:     results,
		Churn:      churns,
		Ship:       ship,
	}); err != nil {
		return err
	}

	for _, cres := range churns {
		if *minChurn > 0 && cres.ChurnRatio < *minChurn {
			return fmt.Errorf("churn-phase throughput at n=%d is %.2f of steady state, below the %.2f gate",
				cres.Nodes, cres.ChurnRatio, *minChurn)
		}
		if *minSuccess > 0 && cres.RForkSuccess < *minSuccess {
			return fmt.Errorf("rfork success at n=%d is %.2f, below the %.2f gate",
				cres.Nodes, cres.RForkSuccess, *minSuccess)
		}
	}

	if *minRatio > 0 {
		for _, res := range results {
			if res.Mode != distModeBatch || res.Nodes < 2 {
				continue
			}
			base := local[res.Nodes]
			if base <= 0 {
				continue
			}
			if ratio := res.Throughput / base; ratio < *minRatio {
				return fmt.Errorf("consensus-batch/local throughput at n=%d is %.2f, below the %.2f gate",
					res.Nodes, ratio, *minRatio)
			}
			fmt.Printf("gate: n=%d consensus-batch/local = %.2f (>= %.2f)\n",
				res.Nodes, res.Throughput/base, *minRatio)
		}
	}
	return nil
}
