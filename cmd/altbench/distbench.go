package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"sync"
	"time"

	"altrun/internal/consensus"
	"altrun/internal/core"
	"altrun/internal/ids"
	"altrun/internal/serve"
	"altrun/internal/stats"
	"altrun/internal/trace"
	"altrun/internal/transport"
)

// distbench measures what distributed commit costs: the same closed-
// loop alternative-block workload is run once with the local in-process
// arbiter and once with every block's commit decided by a majority-
// consensus ballot across a real TCP peer group of 1, 3, and 5 nodes
// (§3.2.1). At 3 and 5 nodes one voter is crashed mid-run: the quorum
// holds and the remaining blocks keep committing. Rows carry commit
// latency (p50/p95), committed blocks per second, and the transport's
// message/byte/RTT accounting.
//
// Usage: altbench distbench [-quick] [-o BENCH_dist.json]

// distLevelResult is one (nodes, mode) row.
type distLevelResult struct {
	Nodes        int                `json:"nodes"`
	Mode         string             `json:"mode"` // "local" or "consensus"
	Jobs         int                `json:"jobs"`
	P50MS        float64            `json:"p50_ms"`
	P95MS        float64            `json:"p95_ms"`
	MeanMS       float64            `json:"mean_ms"`
	Throughput   float64            `json:"committed_blocks_per_sec"`
	VoterCrashed bool               `json:"voter_crashed,omitempty"`
	Net          *trace.NetSnapshot `json:"net,omitempty"`
}

// distBenchReport is the BENCH_dist.json document.
type distBenchReport struct {
	reportMeta
	Clients int               `json:"clients"`
	Levels  []distLevelResult `json:"levels"`
}

const (
	distbenchClients = 4
	distbenchSeed    = 7
)

// distbenchJob is the synthetic block: two correct alternatives of
// distinct costs racing for one commit.
func distbenchJob(seq int) serve.Job {
	work := func(d time.Duration) func(w *core.World) error {
		return func(w *core.World) error {
			deadline := time.Now().Add(d)
			for time.Now().Before(deadline) {
				if w.Cancelled() {
					return errors.New("cancelled")
				}
				time.Sleep(200 * time.Microsecond)
			}
			return w.WriteUint64(0, uint64(seq))
		}
	}
	return serve.Job{
		Kind: "distbench",
		Name: fmt.Sprintf("block-%d", seq),
		Alts: []core.Alt{
			{Name: "fast", Body: work(time.Millisecond)},
			{Name: "slow", Body: work(3 * time.Millisecond)},
		},
		SpaceSize: 4096,
		Deadline:  30 * time.Second,
	}
}

// runDistLevel runs one (nodes, consensusMode) measurement. In
// consensus mode a voter runs on every fleet member and each job's
// block claims through a quorum ballot from node 1; crashVoter kills
// the last member's voter once half the jobs are in.
func runDistLevel(nodes, jobs int, consensusMode, crashVoter bool) (distLevelResult, error) {
	res := distLevelResult{Nodes: nodes, Mode: "local"}
	if consensusMode {
		res.Mode = "consensus"
	}

	fleet, err := transport.NewTCPFleet(nodes, distbenchSeed)
	if err != nil {
		return res, err
	}
	defer fleet.Close()
	eps := fleet.Endpoints()
	members := make([]ids.NodeID, len(eps))
	var voters []*consensus.Voter
	for i, ep := range eps {
		members[i] = ep.ID()
		if consensusMode {
			voters = append(voters, consensus.StartVoter(ep, ""))
		}
	}
	defer func() {
		for _, v := range voters {
			v.Stop()
		}
	}()

	cfg := serve.Config{
		Workers:    distbenchClients,
		SpecTokens: 2 * distbenchClients,
		MaxDegree:  2,
		QueueDepth: 2 * distbenchClients,
	}
	if consensusMode {
		ccfg := consensus.Config{Net: fleet.Counters()}
		cfg.NewClaim = func(job serve.Job, id uint64) core.ClaimFunc {
			key := fmt.Sprintf("bench/%s/%d", job.Name, id)
			cl := consensus.NewClaimant(key, eps[0], members, "", ccfg)
			return func(w *core.World) bool {
				return cl.Claim(transport.Background(), w.PID()).Won
			}
		}
	}
	pool, err := serve.NewPool(cfg)
	if err != nil {
		return res, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = pool.Close(ctx)
	}()

	var (
		mu        sync.Mutex
		latencies stats.Sample
		firstErr  error
		submitted int
		crashOnce sync.Once
	)
	jobsPerClient := jobs / distbenchClients
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < distbenchClients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			for j := 0; j < jobsPerClient; j++ {
				mu.Lock()
				submitted++
				half := submitted >= jobs/2
				mu.Unlock()
				if half && crashVoter && len(voters) > 0 {
					crashOnce.Do(func() {
						voters[len(voters)-1].Stop()
						res.VoterCrashed = true
					})
				}
				tk, err := pool.Submit(distbenchJob(client*jobsPerClient + j))
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("client %d submit: %w", client, err)
					}
					mu.Unlock()
					return
				}
				r, err := tk.Wait(ctx)
				if err != nil || r.Status != serve.StatusDone {
					mu.Lock()
					if firstErr == nil {
						if err == nil {
							err = fmt.Errorf("status %v: %w", r.Status, r.Err)
						}
						firstErr = fmt.Errorf("client %d job %d: %w", client, j, err)
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				latencies.Add(float64(r.Elapsed.Nanoseconds()) / 1e6)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return res, firstErr
	}

	p50, err := latencies.Percentile(50)
	if err != nil {
		return res, err
	}
	p95, err := latencies.Percentile(95)
	if err != nil {
		return res, err
	}
	res.Jobs = latencies.N()
	res.P50MS = p50
	res.P95MS = p95
	res.MeanMS = latencies.Mean()
	res.Throughput = float64(latencies.N()) / elapsed.Seconds()
	if consensusMode {
		snap := fleet.Counters().Snapshot()
		res.Net = &snap
	}
	return res, nil
}

// runDistbench is the `altbench distbench` entry point.
func runDistbench(args []string) error {
	fs := flag.NewFlagSet("distbench", flag.ContinueOnError)
	out := fs.String("o", "BENCH_dist.json", "output JSON path ('-' for stdout only)")
	quick := fs.Bool("quick", false, "CI smoke mode: few jobs per level")
	if err := fs.Parse(args); err != nil {
		return err
	}

	jobs := 48
	if *quick {
		jobs = 8
	}

	fmt.Println("distbench — local vs majority-consensus commit over real TCP peer groups")
	fmt.Printf("%-6s %-10s %6s %10s %10s %10s %12s %8s %10s\n",
		"nodes", "mode", "jobs", "p50 ms", "p95 ms", "mean ms", "blocks/s", "crashed", "msgs")
	var results []distLevelResult
	for _, nodes := range []int{1, 3, 5} {
		for _, mode := range []bool{false, true} {
			crash := mode && nodes >= 3
			res, err := runDistLevel(nodes, jobs, mode, crash)
			if err != nil {
				return fmt.Errorf("nodes=%d mode=%s: %w", nodes, res.Mode, err)
			}
			results = append(results, res)
			msgs := int64(0)
			if res.Net != nil {
				msgs = res.Net.MsgsSent
			}
			fmt.Printf("%-6d %-10s %6d %10.2f %10.2f %10.2f %12.1f %8v %10d\n",
				res.Nodes, res.Mode, res.Jobs, res.P50MS, res.P95MS, res.MeanMS,
				res.Throughput, res.VoterCrashed, msgs)
		}
	}
	fmt.Println("\nconsensus rows include transport accounting; a crashed voter at n≥3 leaves the quorum intact")

	return writeReport(*out, distBenchReport{
		reportMeta: newReportMeta(),
		Clients:    distbenchClients,
		Levels:     results,
	})
}
