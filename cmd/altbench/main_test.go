package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// captureStdout runs f with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), ferr
}

func TestList(t *testing.T) {
	out, err := captureStdout(t, func() error { return realMain("all", true) })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e1", "e7", "e14"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestRunSubset(t *testing.T) {
	out, err := captureStdout(t, func() error { return realMain("e1,e6", false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E1 —") || !strings.Contains(out, "E6 —") {
		t.Errorf("subset output missing tables:\n%s", out)
	}
	if strings.Contains(out, "E3 —") {
		t.Error("unselected experiment ran")
	}
}

func TestRunUnknown(t *testing.T) {
	_, err := captureStdout(t, func() error { return realMain("e99", false) })
	if err == nil || !strings.Contains(err.Error(), "unknown experiments") {
		t.Fatalf("err = %v", err)
	}
}

func TestRegistryComplete(t *testing.T) {
	exps := registry()
	if len(exps) != 17 {
		t.Fatalf("registry has %d experiments, want 17", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.name] {
			t.Errorf("duplicate experiment %s", e.name)
		}
		seen[e.name] = true
		if e.desc == "" {
			t.Errorf("experiment %s missing description", e.name)
		}
	}
}

// TestAllExperimentsRun executes every experiment through the CLI path
// (the full paper reproduction in one test).
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	out, err := captureStdout(t, func() error { return realMain("all", false) })
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 17; i++ {
		tag := "E" + itoa(i) + " —"
		if !strings.Contains(out, tag) {
			t.Errorf("output missing %q", tag)
		}
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return "1" + string(rune('0'+n-10))
}

// TestSelbenchQuick exercises the selection-overhead benchmark CLI end
// to end in smoke mode and sanity-checks the report it writes.
func TestSelbenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness in -short mode")
	}
	path := t.TempDir() + "/BENCH_sel.json"
	out, err := captureStdout(t, func() error {
		return runSelbench([]string{"-quick", "-o", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CommitLatency/live=10", "EliminationThroughput/live=100", "flat"} {
		if !strings.Contains(out, want) {
			t.Errorf("selbench output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep selBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Baseline) == 0 || len(rep.Results) == 0 {
		t.Fatalf("report missing baseline or results: %+v", rep)
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 {
			t.Errorf("result %s/live=%d has non-positive ns/op", r.Name, r.LiveWorlds)
		}
	}
}
