package main

import (
	"flag"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"altrun/internal/core"
)

// selbench runs the real (not simulated) selection-path benchmarks:
// commit latency and sibling-elimination throughput of an alternative
// block while an increasing population of unrelated live worlds is
// registered. On the indexed-propagation design both must be flat in
// the live-world count (commit work is O(affected set)); before it,
// every resolution event scanned every live world, so both grew
// linearly.
//
// Usage: altbench selbench [-quick] [-o BENCH_sel.json]

// selBaselineCommit identifies the pre-index code the baseline numbers
// in this file were measured at.
const selBaselineCommit = "845ae50 (O(live-set) propagate, single-mutex registry)"

// selBenchResult is one benchmark measurement in the JSON output.
type selBenchResult struct {
	Name        string  `json:"name"`
	LiveWorlds  int     `json:"live_worlds"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	// EliminationsPerSec is set for the elimination-throughput rows.
	EliminationsPerSec float64 `json:"eliminations_per_sec,omitempty"`
}

// selContendedResult is one arm of the locked-vs-lock-free A/B at
// 64-way commit contention.
type selContendedResult struct {
	Impl         string  `json:"impl"` // "lockfree" or "locked"
	LiveWorlds   int     `json:"live_worlds"`
	P50Ns        float64 `json:"p50_ns"`
	P99Ns        float64 `json:"p99_ns"`
	BlocksPerSec float64 `json:"blocks_per_sec"`
}

// selBenchReport is the BENCH_sel.json document.
type selBenchReport struct {
	reportMeta
	BaselineCommit string           `json:"baseline_commit"`
	Baseline       []selBenchResult `json:"baseline"`
	Results        []selBenchResult `json:"results"`
	// Contended is the 64-way commit-contention A/B: the same workload
	// on the lock-free registry (default) and the RWMutex baseline
	// (core.Config.LockedRegistry).
	Contended []selContendedResult `json:"contended_64way,omitempty"`
	// MutexProfileReadPath is "clean" when a full mutex profile of the
	// contended lock-free run contains no registry/alias/epoch/proc/
	// router read-path frame — the zero-mutex-acquisition check.
	MutexProfileReadPath string `json:"mutex_profile_read_path,omitempty"`
	// SubscribersPerResolution is the mean affected-set size observed
	// across the run — the quantity commit cost now scales with.
	SubscribersPerResolution float64 `json:"subscribers_per_resolution"`
	ShardContention          int64   `json:"registry_shard_contention"`
}

// selBaseline holds the pre-index numbers (same benchmark bodies, run
// at selBaselineCommit on the same class of machine) so the report
// always carries a before/after comparison.
func selBaseline() []selBenchResult {
	return []selBenchResult{
		{Name: "CommitLatency", LiveWorlds: 10, NsPerOp: 213591},
		{Name: "CommitLatency", LiveWorlds: 100, NsPerOp: 211270},
		{Name: "CommitLatency", LiveWorlds: 1000, NsPerOp: 380903},
		{Name: "CommitLatency", LiveWorlds: 10000, NsPerOp: 1687854},
		{Name: "EliminationThroughput", LiveWorlds: 10, NsPerOp: 16456594, EliminationsPerSec: 3828},
		{Name: "EliminationThroughput", LiveWorlds: 100, NsPerOp: 19041811, EliminationsPerSec: 3309},
		{Name: "EliminationThroughput", LiveWorlds: 1000, NsPerOp: 17133681, EliminationsPerSec: 3677},
		{Name: "EliminationThroughput", LiveWorlds: 10000, NsPerOp: 61804080, EliminationsPerSec: 1019},
	}
}

// populateBystanders registers `live` root worlds that take no part in
// any block: the registry population an unrelated commit must not pay
// for.
func populateBystanders(rt *core.Runtime, live int) error {
	for i := 0; i < live; i++ {
		if _, err := rt.NewRootWorld("bystander", 4096); err != nil {
			return err
		}
	}
	return nil
}

// benchCommitLatency measures one full two-alternative block (spawn,
// race, commit, synchronous sibling elimination) with `live` unrelated
// worlds registered.
func benchCommitLatency(live int) (testing.BenchmarkResult, error) {
	rt := core.New(core.Config{})
	if err := populateBystanders(rt, live); err != nil {
		return testing.BenchmarkResult{}, err
	}
	root, err := rt.NewRootWorld("root", 64*1024)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, err := root.RunAlt(core.Options{SyncElimination: true},
				core.Alt{Name: "fast", Body: func(w *core.World) error {
					return w.WriteUint64(0, uint64(i))
				}},
				core.Alt{Name: "slow", Body: func(w *core.World) error {
					w.Sleep(time.Second)
					return nil
				}},
			)
			if err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	return res, benchErr
}

// selElimWidth is the block width of the elimination benchmark: one
// winner, selElimWidth-1 eliminated losers per block. Wide enough that
// the elimination cascade dominates goroutine-scheduling noise.
const selElimWidth = 64

// benchEliminationThroughput measures a wide block where one
// alternative wins immediately and the rest are eliminated, reporting
// ns/block; eliminations/sec = (width-1)/(ns/block).
func benchEliminationThroughput(live int) (testing.BenchmarkResult, error) {
	const width = selElimWidth
	rt := core.New(core.Config{})
	if err := populateBystanders(rt, live); err != nil {
		return testing.BenchmarkResult{}, err
	}
	root, err := rt.NewRootWorld("root", 64*1024)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	alts := make([]core.Alt, width)
	alts[0] = core.Alt{Name: "winner", Body: func(w *core.World) error { return nil }}
	for i := 1; i < width; i++ {
		alts[i] = core.Alt{Name: "loser", Body: func(w *core.World) error {
			w.Sleep(time.Second)
			return nil
		}}
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := root.RunAlt(core.Options{SyncElimination: true}, alts...); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	return res, benchErr
}

// selContendWidth is the number of concurrently-committing goroutines
// in the contention benchmark — the acceptance point of the lock-free
// refactor ("p50 commit latency under 64-way contention").
const selContendWidth = 64

// benchContendedCommit runs selContendWidth goroutines, each owning a
// root world and committing two-alternative blocks back to back, with
// `live` unrelated bystander worlds registered. Commit latency is
// measured from the winner's body completing to the block resolving
// (claim, commit, synchronous sibling elimination) — not whole-block
// wall time, which on a small machine is dominated by scheduling the
// 64-way goroutine fan-out rather than the selection path under test.
// blocks/s is aggregate over the whole run.
func benchContendedCommit(live, blocksPerWorker int, locked bool) (selContendedResult, error) {
	impl := "lockfree"
	if locked {
		impl = "locked"
	}
	rt := core.New(core.Config{LockedRegistry: locked})
	if err := populateBystanders(rt, live); err != nil {
		return selContendedResult{}, err
	}
	roots := make([]*core.World, selContendWidth)
	for i := range roots {
		r, err := rt.NewRootWorld("contender", 64*1024)
		if err != nil {
			return selContendedResult{}, err
		}
		roots[i] = r
	}
	lat := make([][]time.Duration, selContendWidth)
	errs := make([]error, selContendWidth)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range roots {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			root := roots[i]
			samples := make([]time.Duration, 0, blocksPerWorker)
			for n := 0; n < blocksPerWorker; n++ {
				var won time.Time
				_, err := root.RunAlt(core.Options{SyncElimination: true},
					core.Alt{Name: "fast", Body: func(w *core.World) error {
						if err := w.WriteUint64(0, uint64(n)); err != nil {
							return err
						}
						won = time.Now()
						return nil
					}},
					core.Alt{Name: "slow", Body: func(w *core.World) error {
						w.Sleep(time.Second)
						return nil
					}},
				)
				if err != nil {
					errs[i] = err
					return
				}
				samples = append(samples, time.Since(won))
			}
			lat[i] = samples
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return selContendedResult{}, err
		}
	}
	var all []time.Duration
	for _, s := range lat {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return float64(all[idx].Nanoseconds())
	}
	return selContendedResult{
		Impl:         impl,
		LiveWorlds:   live,
		P50Ns:        pct(0.50),
		P99Ns:        pct(0.99),
		BlocksPerSec: float64(len(all)) / elapsed.Seconds(),
	}, nil
}

// readPathSites are the lock-free read-path functions that must never
// be a mutex-contention *site* (the function that held the contended
// lock): the commit path's alias resolution, registry lookup,
// subscriber snapshot, process status, and router lookup take zero
// mutexes by construction. Writer-side functions (epoch.Map Set/Update/
// Delete, addWorld, Register, Mailbox.Put) legitimately hold mutexes
// and are not in this list.
var readPathSites = []string{
	"epoch.(*Domain).Pin",
	"epoch.Guard.Unpin",
	").Get", // epoch.(*Map[...]).Get — scoped by the epoch package check below
	"lfRegistry).world",
	"lfRegistry).appendSubscribers",
	"lfRegistry).hasAlias",
	"lfRegistry).aliasFor",
	"lfRegistry).appendAliasTargets",
	"proc.(*Table).Status",
	"proc.(*Table).AppendChildren",
	"proc.(*Table).lookup",
	"msg.(*Router).lookup",
}

// isReadPathSite reports whether name is one of the functions that by
// contract acquire no mutex.
func isReadPathSite(name string) bool {
	for _, rp := range readPathSites {
		if !strings.Contains(name, rp) {
			continue
		}
		if rp == ").Get" && !strings.Contains(name, "internal/epoch.") {
			continue // only the epoch map's Get is in scope
		}
		return true
	}
	return false
}

// assertLockFreeReadPath runs a contended workload on the lock-free
// runtime with full mutex profiling and fails if any contended-mutex
// event was held by a read-path function. The contention site is the
// innermost non-sync/non-runtime frame of each profile record.
func assertLockFreeReadPath() (string, error) {
	old := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(old)
	if _, err := benchContendedCommit(100, 50, false); err != nil {
		return "", err
	}
	var records []runtime.BlockProfileRecord
	n, _ := runtime.MutexProfile(nil)
	for {
		records = make([]runtime.BlockProfileRecord, n+64)
		var ok bool
		n, ok = runtime.MutexProfile(records)
		if ok {
			records = records[:n]
			break
		}
	}
	for _, rec := range records {
		for _, pc := range rec.Stack() {
			f := runtime.FuncForPC(pc)
			if f == nil {
				continue
			}
			name := f.Name()
			if strings.HasPrefix(name, "sync.") || strings.HasPrefix(name, "runtime.") {
				continue
			}
			// name is the contention site (lock holder).
			if isReadPathSite(name) {
				return "", fmt.Errorf("mutex contention held by read-path function %s (%d events)", name, rec.Count)
			}
			break
		}
	}
	return "clean", nil
}

func toSelResult(name string, live int, r testing.BenchmarkResult) selBenchResult {
	return selBenchResult{
		Name:        name,
		LiveWorlds:  live,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// runSelbench is the `altbench selbench` entry point.
func runSelbench(args []string) error {
	fs := flag.NewFlagSet("selbench", flag.ContinueOnError)
	out := fs.String("o", "BENCH_sel.json", "output JSON path ('-' for stdout only)")
	quick := fs.Bool("quick", false, "CI smoke mode: small world counts, one iteration")
	abGate := fs.Float64("abgate", 0, "fail unless lock-free contended p50 <= gate × locked p50 (0 = report only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	counts := []int{10, 100, 1000, 10000}
	contendedCounts := []int{10, 10000}
	blocksPerWorker := 200
	if *quick {
		counts = []int{10, 100}
		contendedCounts = []int{10}
		blocksPerWorker = 30
	}

	var results []selBenchResult

	fmt.Println("selbench — real selection-path benchmarks (commit latency, elimination throughput)")
	fmt.Printf("%-32s %14s %12s %12s %14s\n", "benchmark", "ns/op", "allocs/op", "B/op", "elim/s")
	for _, live := range counts {
		r, err := benchCommitLatency(live)
		if err != nil {
			return fmt.Errorf("commit-latency live=%d: %w", live, err)
		}
		res := toSelResult("CommitLatency", live, r)
		results = append(results, res)
		fmt.Printf("%-32s %14.1f %12d %12d %14s\n",
			fmt.Sprintf("CommitLatency/live=%d", live), res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, "-")
	}
	for _, live := range counts {
		r, err := benchEliminationThroughput(live)
		if err != nil {
			return fmt.Errorf("elimination live=%d: %w", live, err)
		}
		res := toSelResult("EliminationThroughput", live, r)
		res.EliminationsPerSec = (selElimWidth - 1) / (res.NsPerOp / 1e9)
		results = append(results, res)
		fmt.Printf("%-32s %14.1f %12d %12d %14.0f\n",
			fmt.Sprintf("EliminationThroughput/live=%d", live), res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, res.EliminationsPerSec)
	}

	// 64-way contention A/B: the same commit workload on the lock-free
	// registry and the RWMutex baseline.
	var contended []selContendedResult
	fmt.Printf("\n%d-way contended commit (A/B: lock-free vs locked registry)\n", selContendWidth)
	fmt.Printf("%-10s %12s %14s %14s %14s\n", "impl", "live", "p50 µs", "p99 µs", "blocks/s")
	for _, live := range contendedCounts {
		for _, locked := range []bool{false, true} {
			r, err := benchContendedCommit(live, blocksPerWorker, locked)
			if err != nil {
				return fmt.Errorf("contended live=%d locked=%v: %w", live, locked, err)
			}
			contended = append(contended, r)
			fmt.Printf("%-10s %12d %14.1f %14.1f %14.0f\n",
				r.Impl, r.LiveWorlds, r.P50Ns/1e3, r.P99Ns/1e3, r.BlocksPerSec)
		}
	}
	if *abGate > 0 {
		for _, live := range contendedCounts {
			var lf, lk float64
			for _, r := range contended {
				if r.LiveWorlds != live {
					continue
				}
				if r.Impl == "lockfree" {
					lf = r.P50Ns
				} else {
					lk = r.P50Ns
				}
			}
			if lk > 0 && lf > *abGate*lk {
				return fmt.Errorf("A/B gate failed at live=%d: lock-free p50 %.0fns > %.2f × locked p50 %.0fns",
					live, lf, *abGate, lk)
			}
		}
		fmt.Printf("A/B gate passed: lock-free p50 <= %.2f × locked p50 at every point\n", *abGate)
	}

	// The zero-mutex-acquisition check on the lock-free read path.
	mutexVerdict, err := assertLockFreeReadPath()
	if err != nil {
		return fmt.Errorf("lock-free read-path mutex assertion: %w", err)
	}
	fmt.Printf("mutex-profile read-path check: %s\n", mutexVerdict)

	// Selection counters from a dedicated traced run: the affected-set
	// size per resolution is the quantity commit cost scales with.
	subsPerRes, contention, err := measureSelCounters()
	if err != nil {
		return err
	}
	fmt.Printf("\nsubscribers visited per resolution: %.2f (affected set; live-set scan would be ≫)\n", subsPerRes)
	fmt.Printf("registry shard contention events: %d\n", contention)

	// Flat-commit check: the headline claim is O(affected-set)
	// selection, so flag a regression right in the tool.
	first, last := results[0].NsPerOp, results[len(counts)-1].NsPerOp
	if first > 0 {
		ratio := last / first
		verdict := fmt.Sprintf("flat (O(affected-set) selection, %dx world growth)", counts[len(counts)-1]/counts[0])
		if ratio > 2 {
			verdict = "NOT FLAT — commit cost scales with the live set"
		}
		fmt.Printf("commit latency %d/%d worlds ratio: %.2fx — %s\n", counts[len(counts)-1], counts[0], ratio, verdict)
	}

	return writeReport(*out, selBenchReport{
		reportMeta:               newReportMeta(),
		BaselineCommit:           selBaselineCommit,
		Baseline:                 selBaseline(),
		Results:                  results,
		Contended:                contended,
		MutexProfileReadPath:     mutexVerdict,
		SubscribersPerResolution: subsPerRes,
		ShardContention:          contention,
	})
}

// measureSelCounters runs a fixed workload (100 blocks of width 4 among
// 1000 bystanders) and reads the runtime's selection counters.
func measureSelCounters() (subsPerResolution float64, contention int64, err error) {
	rt := core.New(core.Config{})
	if err := populateBystanders(rt, 1000); err != nil {
		return 0, 0, err
	}
	root, err := rt.NewRootWorld("root", 64*1024)
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < 100; i++ {
		alts := make([]core.Alt, 4)
		for j := range alts {
			alts[j] = core.Alt{Name: "alt", Body: func(w *core.World) error { return nil }}
		}
		if _, err := root.RunAlt(core.Options{SyncElimination: true}, alts...); err != nil {
			return 0, 0, err
		}
	}
	sel := rt.SelStats()
	if sel.Resolutions == 0 {
		return 0, sel.ShardContention, nil
	}
	return float64(sel.SubscribersVisited) / float64(sel.Resolutions), sel.ShardContention, nil
}
