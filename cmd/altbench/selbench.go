package main

import (
	"flag"
	"fmt"
	"testing"
	"time"

	"altrun/internal/core"
)

// selbench runs the real (not simulated) selection-path benchmarks:
// commit latency and sibling-elimination throughput of an alternative
// block while an increasing population of unrelated live worlds is
// registered. On the indexed-propagation design both must be flat in
// the live-world count (commit work is O(affected set)); before it,
// every resolution event scanned every live world, so both grew
// linearly.
//
// Usage: altbench selbench [-quick] [-o BENCH_sel.json]

// selBaselineCommit identifies the pre-index code the baseline numbers
// in this file were measured at.
const selBaselineCommit = "845ae50 (O(live-set) propagate, single-mutex registry)"

// selBenchResult is one benchmark measurement in the JSON output.
type selBenchResult struct {
	Name        string  `json:"name"`
	LiveWorlds  int     `json:"live_worlds"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	// EliminationsPerSec is set for the elimination-throughput rows.
	EliminationsPerSec float64 `json:"eliminations_per_sec,omitempty"`
}

// selBenchReport is the BENCH_sel.json document.
type selBenchReport struct {
	reportMeta
	BaselineCommit string           `json:"baseline_commit"`
	Baseline       []selBenchResult `json:"baseline"`
	Results        []selBenchResult `json:"results"`
	// SubscribersPerResolution is the mean affected-set size observed
	// across the run — the quantity commit cost now scales with.
	SubscribersPerResolution float64 `json:"subscribers_per_resolution"`
	ShardContention          int64   `json:"registry_shard_contention"`
}

// selBaseline holds the pre-index numbers (same benchmark bodies, run
// at selBaselineCommit on the same class of machine) so the report
// always carries a before/after comparison.
func selBaseline() []selBenchResult {
	return []selBenchResult{
		{Name: "CommitLatency", LiveWorlds: 10, NsPerOp: 213591},
		{Name: "CommitLatency", LiveWorlds: 100, NsPerOp: 211270},
		{Name: "CommitLatency", LiveWorlds: 1000, NsPerOp: 380903},
		{Name: "CommitLatency", LiveWorlds: 10000, NsPerOp: 1687854},
		{Name: "EliminationThroughput", LiveWorlds: 10, NsPerOp: 16456594, EliminationsPerSec: 3828},
		{Name: "EliminationThroughput", LiveWorlds: 100, NsPerOp: 19041811, EliminationsPerSec: 3309},
		{Name: "EliminationThroughput", LiveWorlds: 1000, NsPerOp: 17133681, EliminationsPerSec: 3677},
		{Name: "EliminationThroughput", LiveWorlds: 10000, NsPerOp: 61804080, EliminationsPerSec: 1019},
	}
}

// populateBystanders registers `live` root worlds that take no part in
// any block: the registry population an unrelated commit must not pay
// for.
func populateBystanders(rt *core.Runtime, live int) error {
	for i := 0; i < live; i++ {
		if _, err := rt.NewRootWorld("bystander", 4096); err != nil {
			return err
		}
	}
	return nil
}

// benchCommitLatency measures one full two-alternative block (spawn,
// race, commit, synchronous sibling elimination) with `live` unrelated
// worlds registered.
func benchCommitLatency(live int) (testing.BenchmarkResult, error) {
	rt := core.New(core.Config{})
	if err := populateBystanders(rt, live); err != nil {
		return testing.BenchmarkResult{}, err
	}
	root, err := rt.NewRootWorld("root", 64*1024)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, err := root.RunAlt(core.Options{SyncElimination: true},
				core.Alt{Name: "fast", Body: func(w *core.World) error {
					return w.WriteUint64(0, uint64(i))
				}},
				core.Alt{Name: "slow", Body: func(w *core.World) error {
					w.Sleep(time.Second)
					return nil
				}},
			)
			if err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	return res, benchErr
}

// selElimWidth is the block width of the elimination benchmark: one
// winner, selElimWidth-1 eliminated losers per block. Wide enough that
// the elimination cascade dominates goroutine-scheduling noise.
const selElimWidth = 64

// benchEliminationThroughput measures a wide block where one
// alternative wins immediately and the rest are eliminated, reporting
// ns/block; eliminations/sec = (width-1)/(ns/block).
func benchEliminationThroughput(live int) (testing.BenchmarkResult, error) {
	const width = selElimWidth
	rt := core.New(core.Config{})
	if err := populateBystanders(rt, live); err != nil {
		return testing.BenchmarkResult{}, err
	}
	root, err := rt.NewRootWorld("root", 64*1024)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	alts := make([]core.Alt, width)
	alts[0] = core.Alt{Name: "winner", Body: func(w *core.World) error { return nil }}
	for i := 1; i < width; i++ {
		alts[i] = core.Alt{Name: "loser", Body: func(w *core.World) error {
			w.Sleep(time.Second)
			return nil
		}}
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := root.RunAlt(core.Options{SyncElimination: true}, alts...); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	return res, benchErr
}

func toSelResult(name string, live int, r testing.BenchmarkResult) selBenchResult {
	return selBenchResult{
		Name:        name,
		LiveWorlds:  live,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// runSelbench is the `altbench selbench` entry point.
func runSelbench(args []string) error {
	fs := flag.NewFlagSet("selbench", flag.ContinueOnError)
	out := fs.String("o", "BENCH_sel.json", "output JSON path ('-' for stdout only)")
	quick := fs.Bool("quick", false, "CI smoke mode: small world counts, one iteration")
	if err := fs.Parse(args); err != nil {
		return err
	}

	counts := []int{10, 100, 1000, 10000}
	if *quick {
		counts = []int{10, 100}
	}

	var results []selBenchResult

	fmt.Println("selbench — real selection-path benchmarks (commit latency, elimination throughput)")
	fmt.Printf("%-32s %14s %12s %12s %14s\n", "benchmark", "ns/op", "allocs/op", "B/op", "elim/s")
	for _, live := range counts {
		r, err := benchCommitLatency(live)
		if err != nil {
			return fmt.Errorf("commit-latency live=%d: %w", live, err)
		}
		res := toSelResult("CommitLatency", live, r)
		results = append(results, res)
		fmt.Printf("%-32s %14.1f %12d %12d %14s\n",
			fmt.Sprintf("CommitLatency/live=%d", live), res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, "-")
	}
	for _, live := range counts {
		r, err := benchEliminationThroughput(live)
		if err != nil {
			return fmt.Errorf("elimination live=%d: %w", live, err)
		}
		res := toSelResult("EliminationThroughput", live, r)
		res.EliminationsPerSec = (selElimWidth - 1) / (res.NsPerOp / 1e9)
		results = append(results, res)
		fmt.Printf("%-32s %14.1f %12d %12d %14.0f\n",
			fmt.Sprintf("EliminationThroughput/live=%d", live), res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, res.EliminationsPerSec)
	}

	// Selection counters from a dedicated traced run: the affected-set
	// size per resolution is the quantity commit cost scales with.
	subsPerRes, contention, err := measureSelCounters()
	if err != nil {
		return err
	}
	fmt.Printf("\nsubscribers visited per resolution: %.2f (affected set; live-set scan would be ≫)\n", subsPerRes)
	fmt.Printf("registry shard contention events: %d\n", contention)

	// Flat-commit check: the headline claim is O(affected-set)
	// selection, so flag a regression right in the tool.
	first, last := results[0].NsPerOp, results[len(counts)-1].NsPerOp
	if first > 0 {
		ratio := last / first
		verdict := fmt.Sprintf("flat (O(affected-set) selection, %dx world growth)", counts[len(counts)-1]/counts[0])
		if ratio > 2 {
			verdict = "NOT FLAT — commit cost scales with the live set"
		}
		fmt.Printf("commit latency %d/%d worlds ratio: %.2fx — %s\n", counts[len(counts)-1], counts[0], ratio, verdict)
	}

	return writeReport(*out, selBenchReport{
		reportMeta:               newReportMeta(),
		BaselineCommit:           selBaselineCommit,
		Baseline:                 selBaseline(),
		Results:                  results,
		SubscribersPerResolution: subsPerRes,
		ShardContention:          contention,
	})
}

// measureSelCounters runs a fixed workload (100 blocks of width 4 among
// 1000 bystanders) and reads the runtime's selection counters.
func measureSelCounters() (subsPerResolution float64, contention int64, err error) {
	rt := core.New(core.Config{})
	if err := populateBystanders(rt, 1000); err != nil {
		return 0, 0, err
	}
	root, err := rt.NewRootWorld("root", 64*1024)
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < 100; i++ {
		alts := make([]core.Alt, 4)
		for j := range alts {
			alts[j] = core.Alt{Name: "alt", Body: func(w *core.World) error { return nil }}
		}
		if _, err := root.RunAlt(core.Options{SyncElimination: true}, alts...); err != nil {
			return 0, 0, err
		}
	}
	sel := rt.SelStats()
	if sel.Resolutions == 0 {
		return 0, sel.ShardContention, nil
	}
	return float64(sel.SubscribersVisited) / float64(sel.Resolutions), sel.ShardContention, nil
}
