package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"sync"
	"time"

	"altrun/internal/core"
	"altrun/internal/serve"
	"altrun/internal/stats"
)

// servebench drives the admission-controlled service layer closed-loop:
// at each concurrency level, C clients submit synthetic alternative-
// block jobs back to back against a serve.Pool sized for that level,
// and the tool records p50/p99 submit-to-commit latency, committed
// blocks per second, and how hard the speculation budget throttled
// (budget waits, lazy waves, alternatives never spawned).
//
// Usage: altbench servebench [-quick] [-o BENCH_serve.json]

// serveLevelResult is one concurrency level's measurement.
type serveLevelResult struct {
	Concurrency   int     `json:"concurrency"`
	SpecTokens    int     `json:"spec_tokens"`
	Jobs          int     `json:"jobs"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	MeanMS        float64 `json:"mean_ms"`
	Throughput    float64 `json:"committed_blocks_per_sec"`
	SpecHighWater int64   `json:"spec_high_water"`
	BudgetWaits   int64   `json:"budget_waits"`
	LazyWaves     int64   `json:"lazy_waves"`
	AltsUnspawned int64   `json:"alts_unspawned"`
}

// serveBenchReport is the BENCH_serve.json document.
type serveBenchReport struct {
	reportMeta
	MaxDegree int                `json:"max_degree"`
	Levels    []serveLevelResult `json:"levels"`
}

// servebenchMaxDegree caps per-job speculation width in the benchmark.
const servebenchMaxDegree = 3

// servebenchJob builds the synthetic block: three alternatives of
// distinct costs, all correct, so the fastest admitted one commits.
// Every seventh job fault-injects the fast alternative, forcing the
// pool onto its lazy-spawn path.
func servebenchJob(seq int) serve.Job {
	work := func(d time.Duration, fail bool) func(w *core.World) error {
		return func(w *core.World) error {
			deadline := time.Now().Add(d)
			for time.Now().Before(deadline) {
				if w.Cancelled() {
					return errors.New("cancelled")
				}
				time.Sleep(200 * time.Microsecond)
			}
			if fail {
				return errors.New("injected fault")
			}
			return w.WriteUint64(0, uint64(seq))
		}
	}
	faulty := seq%7 == 0
	return serve.Job{
		Kind: "servebench",
		Name: fmt.Sprintf("synthetic-%d", seq),
		Alts: []core.Alt{
			{Name: "fast", Body: work(time.Millisecond, faulty)},
			{Name: "medium", Body: work(2*time.Millisecond, false)},
			{Name: "slow", Body: work(4*time.Millisecond, false)},
		},
		SpaceSize: 4096,
		Deadline:  30 * time.Second,
	}
}

// runServeLevel runs one closed-loop level: clients × jobsPerClient
// jobs against a pool sized for the level.
func runServeLevel(clients, jobsPerClient int) (serveLevelResult, error) {
	specTokens := 2 * clients
	pool, err := serve.NewPool(serve.Config{
		Workers:    clients,
		SpecTokens: specTokens,
		MaxDegree:  servebenchMaxDegree,
		QueueDepth: 2 * clients,
	})
	if err != nil {
		return serveLevelResult{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = pool.Close(ctx)
	}()

	var (
		mu        sync.Mutex
		latencies stats.Sample
		firstErr  error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			for j := 0; j < jobsPerClient; j++ {
				seq := client*jobsPerClient + j
				tk, err := pool.Submit(servebenchJob(seq))
				if err != nil {
					// Closed loop: the queue holds at most one job per
					// client, so admission failures are real errors.
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("client %d submit: %w", client, err)
					}
					mu.Unlock()
					return
				}
				res, err := tk.Wait(ctx)
				if err != nil || res.Status != serve.StatusDone {
					mu.Lock()
					if firstErr == nil {
						if err == nil {
							err = fmt.Errorf("status %v: %w", res.Status, res.Err)
						}
						firstErr = fmt.Errorf("client %d job %d: %w", client, j, err)
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				latencies.Add(float64(res.Elapsed.Nanoseconds()) / 1e6)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return serveLevelResult{}, firstErr
	}

	st := pool.Stats()
	if int(st.SpecHighWater) > specTokens {
		return serveLevelResult{}, fmt.Errorf(
			"budget violated: %d live speculative worlds against %d tokens",
			st.SpecHighWater, specTokens)
	}
	p50, err := latencies.Percentile(50)
	if err != nil {
		return serveLevelResult{}, err
	}
	p99, err := latencies.Percentile(99)
	if err != nil {
		return serveLevelResult{}, err
	}
	return serveLevelResult{
		Concurrency:   clients,
		SpecTokens:    specTokens,
		Jobs:          latencies.N(),
		P50MS:         p50,
		P99MS:         p99,
		MeanMS:        latencies.Mean(),
		Throughput:    float64(latencies.N()) / elapsed.Seconds(),
		SpecHighWater: st.SpecHighWater,
		BudgetWaits:   st.TokenWaits,
		LazyWaves:     st.LazyWaves,
		AltsUnspawned: st.AltsUnspawned,
	}, nil
}

// runServebench is the `altbench servebench` entry point.
func runServebench(args []string) error {
	fs := flag.NewFlagSet("servebench", flag.ContinueOnError)
	out := fs.String("o", "BENCH_serve.json", "output JSON path ('-' for stdout only)")
	quick := fs.Bool("quick", false, "CI smoke mode: small levels, few jobs")
	if err := fs.Parse(args); err != nil {
		return err
	}

	levels := []int{8, 16, 32, 64}
	jobsPerClient := 25
	if *quick {
		levels = []int{4, 8}
		jobsPerClient = 4
	}

	fmt.Println("servebench — closed-loop load against the admission-controlled service layer")
	fmt.Printf("%-6s %8s %10s %10s %10s %12s %10s %10s %12s\n",
		"conc", "jobs", "p50 ms", "p99 ms", "mean ms", "blocks/s", "hw/tokens", "waits", "unspawned")
	var results []serveLevelResult
	for _, c := range levels {
		res, err := runServeLevel(c, jobsPerClient)
		if err != nil {
			return fmt.Errorf("level %d: %w", c, err)
		}
		results = append(results, res)
		fmt.Printf("%-6d %8d %10.2f %10.2f %10.2f %12.1f %7d/%-3d %10d %12d\n",
			res.Concurrency, res.Jobs, res.P50MS, res.P99MS, res.MeanMS,
			res.Throughput, res.SpecHighWater, res.SpecTokens, res.BudgetWaits, res.AltsUnspawned)
	}
	fmt.Println("\nbudget held at every level: live speculative worlds never exceeded the token pool")

	return writeReport(*out, serveBenchReport{
		reportMeta: newReportMeta(),
		MaxDegree:  servebenchMaxDegree,
		Levels:     results,
	})
}
