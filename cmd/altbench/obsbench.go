package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"altrun/internal/obs"
	"altrun/internal/serve"
)

// obsbench measures the flight recorder's cost: the same closed-loop
// servebench workload is run with the recorder off and with it on at
// the default 1/64 sampling rate, interleaved best-of-N so machine
// noise cancels. The report proves the two claims the obs subsystem
// makes: throughput regresses < 5%, and every sampled block's
// setup/runtime/selection/sched spans sum exactly to its wall time.
//
// Usage: altbench obsbench [-quick] [-o BENCH_obs.json] [-trace-out t.json]

// obsRunResult is one configuration's best observed run.
type obsRunResult struct {
	Jobs       int     `json:"jobs"`
	Throughput float64 `json:"committed_blocks_per_sec"`
	MeanMS     float64 `json:"mean_ms"`
}

// obsBenchReport is the BENCH_obs.json document.
type obsBenchReport struct {
	reportMeta
	Concurrency   int          `json:"concurrency"`
	SampleRate    int          `json:"sample_rate"`
	Reps          int          `json:"reps"`
	Baseline      obsRunResult `json:"baseline"`
	Recorded      obsRunResult `json:"recorded"`
	RegressionPct float64      `json:"regression_pct"`
	Within5Pct    bool         `json:"within_5pct"`

	// Recorder-side evidence from the recorded runs.
	BlocksStarted    int64   `json:"blocks_started"`
	BlocksSampled    int64   `json:"blocks_sampled"`
	TimelinesChecked int     `json:"timelines_checked"`
	AllReconciled    bool    `json:"all_reconciled"`
	PIMeasuredMean   float64 `json:"pi_measured_mean"`
	PIPredictedMean  float64 `json:"pi_predicted_mean"`

	// Calibration: the PI prediction folds the measured overhead EWMA
	// into its denominator; the raw (overhead-blind) prediction is kept
	// alongside. Calibrated means the folded prediction sits at least
	// as close to the measured PI as the raw one, block by block.
	PIGapFoldedMean float64 `json:"pi_gap_folded_mean"`
	PIGapRawMean    float64 `json:"pi_gap_raw_mean"`
	PIGapBlocks     int64   `json:"pi_gap_blocks"`
	Calibrated      bool    `json:"calibrated"`
}

// runObsLoop drives one closed-loop run of the servebench workload
// against a pool with the given recorder (nil = baseline).
func runObsLoop(clients, jobsPerClient int, rec *obs.Recorder) (obsRunResult, error) {
	pool, err := serve.NewPool(serve.Config{
		Workers:    clients,
		SpecTokens: 2 * clients,
		MaxDegree:  servebenchMaxDegree,
		QueueDepth: 2 * clients,
		Recorder:   rec,
	})
	if err != nil {
		return obsRunResult{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = pool.Close(ctx)
	}()

	var (
		mu       sync.Mutex
		done     int
		sumMS    float64
		firstErr error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			for j := 0; j < jobsPerClient; j++ {
				tk, err := pool.Submit(servebenchJob(client*jobsPerClient + j))
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("client %d submit: %w", client, err)
					}
					mu.Unlock()
					return
				}
				res, err := tk.Wait(ctx)
				if err != nil || res.Status != serve.StatusDone {
					mu.Lock()
					if firstErr == nil {
						if err == nil {
							err = fmt.Errorf("status %v: %w", res.Status, res.Err)
						}
						firstErr = fmt.Errorf("client %d job %d: %w", client, j, err)
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				done++
				sumMS += float64(res.Elapsed.Nanoseconds()) / 1e6
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return obsRunResult{}, firstErr
	}
	return obsRunResult{
		Jobs:       done,
		Throughput: float64(done) / elapsed.Seconds(),
		MeanMS:     sumMS / float64(done),
	}, nil
}

// checkReconciliation asserts the decomposition invariant on every
// retained timeline: Setup+Runtime+Selection+Sched == Wall exactly.
func checkReconciliation(rec *obs.Recorder) (checked int, ok bool, firstBad *obs.Timeline) {
	for _, tl := range rec.Recent() {
		checked++
		if tl.Setup+tl.Runtime+tl.Selection+tl.Sched != tl.Wall {
			return checked, false, tl
		}
	}
	return checked, checked > 0, nil
}

// runObsbench is the `altbench obsbench` entry point.
func runObsbench(args []string) error {
	fs := flag.NewFlagSet("obsbench", flag.ContinueOnError)
	out := fs.String("o", "BENCH_obs.json", "output JSON path ('-' for stdout only)")
	quick := fs.Bool("quick", false, "CI smoke mode: fewer jobs and reps")
	traceOut := fs.String("trace-out", "", "write one sampled block's Chrome trace JSON here")
	rate := fs.Int("rate", obs.DefaultSampleRate, "recorder sampling rate (1 in N blocks)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	clients, jobsPerClient, reps := 16, 40, 3
	if *quick {
		clients, jobsPerClient, reps = 8, 8, 2
	}

	fmt.Printf("obsbench — servebench workload, recorder off vs on (rate 1/%d), best of %d\n", *rate, reps)
	var (
		base, recd           obsRunResult
		started, samp        int64
		piMeas, piPred       float64
		gapFolded, gapRaw    float64
		gapBlocks, gapWeight int64
		checked              int
		reconciled           = true
		traceDumped          bool
	)
	for r := 0; r < reps; r++ {
		// Interleave A/B within each rep so drift hits both equally.
		b, err := runObsLoop(clients, jobsPerClient, nil)
		if err != nil {
			return fmt.Errorf("baseline rep %d: %w", r, err)
		}
		if b.Throughput > base.Throughput {
			base = b
		}
		rec := obs.NewRecorder(obs.Config{SampleRate: *rate})
		w, err := runObsLoop(clients, jobsPerClient, rec)
		if err != nil {
			return fmt.Errorf("recorded rep %d: %w", r, err)
		}
		if w.Throughput > recd.Throughput {
			recd = w
		}
		st := rec.Stats()
		started += st.BlocksStarted
		samp += st.BlocksSampled
		piMeas, piPred = st.PIMeasuredMean, st.PIPredictedMean
		if st.PIGapBlocks > 0 {
			gapFolded += st.PIGapFoldedMean * float64(st.PIGapBlocks)
			gapRaw += st.PIGapRawMean * float64(st.PIGapBlocks)
			gapWeight += st.PIGapBlocks
			gapBlocks += st.PIGapBlocks
		}
		n, ok, bad := checkReconciliation(rec)
		checked += n
		if !ok {
			reconciled = false
			if bad != nil {
				fmt.Printf("  rep %d: timeline %d does not reconcile: %+v\n", r, bad.ID, bad)
			}
		}
		if *traceOut != "" && !traceDumped {
			if recent := rec.Recent(); len(recent) > 0 {
				raw, terr := recent[0].ChromeTrace()
				if terr == nil && os.WriteFile(*traceOut, raw, 0o644) == nil {
					fmt.Printf("  wrote Chrome trace of block %d to %s\n", recent[0].ID, *traceOut)
					traceDumped = true
				}
			}
		}
		fmt.Printf("  rep %d: baseline %.1f blocks/s, recorded %.1f blocks/s (%d/%d sampled)\n",
			r, b.Throughput, w.Throughput, st.BlocksSampled, st.BlocksStarted)
	}

	regression := 100 * (base.Throughput - recd.Throughput) / base.Throughput
	within := regression < 5
	fmt.Printf("\nbaseline  %10.1f blocks/s (mean %.2f ms)\n", base.Throughput, base.MeanMS)
	fmt.Printf("recorded  %10.1f blocks/s (mean %.2f ms)\n", recd.Throughput, recd.MeanMS)
	fmt.Printf("regression %.2f%% (budget 5%%) — %s\n", regression, map[bool]string{true: "PASS", false: "FAIL"}[within])
	fmt.Printf("reconciliation: %d timelines checked, all exact: %v\n", checked, reconciled)

	// Calibration assertion: folding the measured overhead EWMA into the
	// predicted PI's denominator must not move the prediction further
	// from the measured PI than the raw (overhead-blind) one.
	if gapWeight > 0 {
		gapFolded /= float64(gapWeight)
		gapRaw /= float64(gapWeight)
	}
	calibrated := gapWeight == 0 || gapFolded <= gapRaw
	fmt.Printf("calibration: |pred−meas| PI gap folded %.3f vs raw %.3f over %d blocks — %s\n",
		gapFolded, gapRaw, gapBlocks, map[bool]string{true: "PASS", false: "FAIL"}[calibrated])

	if err := writeReport(*out, obsBenchReport{
		reportMeta:       newReportMeta(),
		Concurrency:      clients,
		SampleRate:       *rate,
		Reps:             reps,
		Baseline:         base,
		Recorded:         recd,
		RegressionPct:    regression,
		Within5Pct:       within,
		BlocksStarted:    started,
		BlocksSampled:    samp,
		TimelinesChecked: checked,
		AllReconciled:    reconciled,
		PIMeasuredMean:   piMeas,
		PIPredictedMean:  piPred,
		PIGapFoldedMean:  gapFolded,
		PIGapRawMean:     gapRaw,
		PIGapBlocks:      gapBlocks,
		Calibrated:       calibrated,
	}); err != nil {
		return err
	}
	if !within {
		return fmt.Errorf("recorder overhead %.2f%% exceeds the 5%% budget", regression)
	}
	if !reconciled {
		return fmt.Errorf("decomposition failed to reconcile on a sampled timeline")
	}
	if !calibrated {
		return fmt.Errorf("calibration regressed: folded PI gap %.3f > raw gap %.3f", gapFolded, gapRaw)
	}
	return nil
}
