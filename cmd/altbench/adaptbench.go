package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"runtime"
	"sync"
	"time"

	"altrun/internal/core"
	"altrun/internal/obs"
	"altrun/internal/serve"
	"altrun/internal/stats"
)

// adaptbench A/Bs the static speculation policy against the adaptive
// controller (serve/policy.go) on two workloads:
//
//   - mixed: half the jobs have one dominant alternative — a cheap
//     always-correct primary racing two 3×-as-expensive fallbacks, the
//     paper's PI < 1 regime where speculation burns CPU for nothing —
//     and half have genuinely uncertain winners: three equal-cost
//     alternatives of which exactly one (rotating per job) passes, so
//     racing them beats sequential fall-through. The static pool
//     speculates full-width on both; the controller should learn to run
//     the dominant kind sequentially and keep racing the uncertain one.
//     Target: ≥20% better throughput or mean latency.
//   - uniform: the servebench workload (one clearly fastest alternative,
//     occasional faults), where the static policy is already close to
//     optimal. Target: adaptive within 5% of static.
//
// Usage: altbench adaptbench [-quick] [-o BENCH_adapt.json]

// adaptDominantIters is the dominant kind's primary cost in hash-loop
// iterations (~0.5 ms of one core); the fallbacks burn 3× as much.
const adaptDominantIters = 400_000

// adaptDominantJob is the PI < 1 kind: "lean" always succeeds at a
// third of the cost of either fallback, so racing all three only steals
// CPU from the winner. Bodies burn a fixed iteration count — not a
// wall-clock deadline — so CPU sharing among speculative siblings shows
// up as latency, exactly the §4.2 contention the controller should
// learn to avoid.
func adaptDominantJob(seq int) serve.Job {
	burn := func(iters int) func(w *core.World) error {
		return func(w *core.World) error {
			acc := uint64(seq)*2654435761 + 1
			for i := 0; i < iters; i++ {
				acc = acc*6364136223846793005 + 1442695040888963407
				if i&8191 == 0 {
					if w.Cancelled() {
						return errors.New("cancelled")
					}
					// Yield so CPU cost maps to completion order even on
					// GOMAXPROCS=1: without it a body finishes within one
					// scheduler slice and whichever sibling ran first wins.
					runtime.Gosched()
				}
			}
			return w.WriteUint64(0, acc|1)
		}
	}
	return serve.Job{
		Kind: "adapt-dominant",
		Name: fmt.Sprintf("dominant-%d", seq),
		Alts: []core.Alt{
			{Name: "lean", Body: burn(adaptDominantIters)},
			{Name: "mid", Body: burn(3 * adaptDominantIters)},
			{Name: "heavy", Body: burn(3 * adaptDominantIters)},
		},
		SpaceSize: 4096,
		Deadline:  30 * time.Second,
	}
}

// adaptUncertainJob is the PI > 1 kind: three equal-latency paths of
// which exactly one — rotating with the job sequence, so no path
// dominates historically — succeeds; the others discover failure only
// after doing the same amount of (sleep-modelled) work. Sequentially
// that is two failed waves on average before the hit; raced, the
// winner commits in one wave.
func adaptUncertainJob(seq int) serve.Job {
	winner := seq % 3
	path := func(i int) core.Alt {
		hit := i == winner
		return core.Alt{
			Name: fmt.Sprintf("path-%d", i),
			Body: func(w *core.World) error {
				end := time.Now().Add(2 * time.Millisecond)
				for time.Now().Before(end) {
					if w.Cancelled() {
						return errors.New("cancelled")
					}
					time.Sleep(100 * time.Microsecond)
				}
				if !hit {
					return errors.New("wrong path")
				}
				return w.WriteUint64(0, uint64(seq))
			},
		}
	}
	return serve.Job{
		Kind:      "adapt-uncertain",
		Name:      fmt.Sprintf("uncertain-%d", seq),
		Alts:      []core.Alt{path(0), path(1), path(2)},
		SpaceSize: 4096,
		Deadline:  30 * time.Second,
	}
}

// adaptMixedJob interleaves the two kinds 50/50.
func adaptMixedJob(seq int) serve.Job {
	if seq%2 == 0 {
		return adaptDominantJob(seq)
	}
	return adaptUncertainJob(seq / 2)
}

// adaptRunResult is one configuration's measurement on one workload.
type adaptRunResult struct {
	Jobs       int     `json:"jobs"`
	Throughput float64 `json:"committed_blocks_per_sec"`
	MeanMS     float64 `json:"mean_ms"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
}

// adaptABResult is one workload's static-vs-adaptive comparison.
type adaptABResult struct {
	Static   adaptRunResult `json:"static"`
	Adaptive adaptRunResult `json:"adaptive"`
	// Improvements are adaptive vs static, positive = adaptive better.
	ThroughputGainPct float64 `json:"throughput_gain_pct"`
	MeanLatGainPct    float64 `json:"mean_latency_gain_pct"`
}

// adaptBenchReport is the BENCH_adapt.json document.
type adaptBenchReport struct {
	reportMeta
	Quick     bool          `json:"quick"`
	Mixed     adaptABResult `json:"mixed"`
	Uniform   adaptABResult `json:"uniform"`
	MixedGoal bool          `json:"mixed_goal_met"`   // ≥20% on throughput or mean latency
	UniformOK bool          `json:"uniform_within_5"` // adaptive ≥ static − 5%

	// Controller evidence from the adaptive mixed run.
	Policy              serve.PolicyStats  `json:"policy"`
	DominantKind        serve.KindSnapshot `json:"dominant_kind"`
	UncertainKind       serve.KindSnapshot `json:"uncertain_kind"`
	SequentialEngaged   bool               `json:"sequential_engaged"`   // dominant kind saw seq decisions
	SpeculationRetained bool               `json:"speculation_retained"` // uncertain kind kept speculating
}

// runAdaptLoop drives one closed-loop run: clients × jobs, with an
// untimed warmup so the adaptive history reaches steady state before
// measurement (the static arm warms up identically for fairness).
// kinds names the job kinds whose KindSnapshots the caller wants back.
func runAdaptLoop(clients, warmup, jobsPerClient int, adaptive bool,
	jobFor func(seq int) serve.Job, kinds []string) (adaptRunResult, serve.PolicyStats, map[string]serve.KindSnapshot, error) {

	fail := func(err error) (adaptRunResult, serve.PolicyStats, map[string]serve.KindSnapshot, error) {
		return adaptRunResult{}, serve.PolicyStats{}, nil, err
	}
	pool, err := serve.NewPool(serve.Config{
		Workers:    clients,
		SpecTokens: 2 * clients,
		MaxDegree:  servebenchMaxDegree,
		QueueDepth: 2 * clients,
		Recorder:   obs.NewRecorder(obs.Config{}),
		Adapt:      serve.AdaptConfig{Enabled: adaptive},
	})
	if err != nil {
		return fail(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = pool.Close(ctx)
	}()

	var (
		mu        sync.Mutex
		latencies stats.Sample
		firstErr  error
	)
	phase := func(offset, perClient int, record bool) {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(client int) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
				defer cancel()
				for j := 0; j < perClient; j++ {
					seq := offset + client*perClient + j
					tk, err := pool.Submit(jobFor(seq))
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("client %d submit: %w", client, err)
						}
						mu.Unlock()
						return
					}
					res, err := tk.Wait(ctx)
					if err != nil || res.Status != serve.StatusDone {
						mu.Lock()
						if firstErr == nil {
							if err == nil {
								err = fmt.Errorf("status %v: %w", res.Status, res.Err)
							}
							firstErr = fmt.Errorf("client %d job %d: %w", client, j, err)
						}
						mu.Unlock()
						return
					}
					if record {
						mu.Lock()
						latencies.Add(float64(res.Elapsed.Nanoseconds()) / 1e6)
						mu.Unlock()
					}
				}
			}(c)
		}
		wg.Wait()
	}

	phase(0, warmup, false)
	if firstErr != nil {
		return fail(firstErr)
	}
	start := time.Now()
	phase(clients*warmup, jobsPerClient, true)
	elapsed := time.Since(start)
	if firstErr != nil {
		return fail(firstErr)
	}

	p50, err := latencies.Percentile(50)
	if err != nil {
		return fail(err)
	}
	p99, err := latencies.Percentile(99)
	if err != nil {
		return fail(err)
	}
	snaps := make(map[string]serve.KindSnapshot, len(kinds))
	for _, k := range kinds {
		snaps[k] = pool.History().Kind(k)
	}
	return adaptRunResult{
		Jobs:       latencies.N(),
		Throughput: float64(latencies.N()) / elapsed.Seconds(),
		MeanMS:     latencies.Mean(),
		P50MS:      p50,
		P99MS:      p99,
	}, pool.PolicyStats(), snaps, nil
}

// gainPct returns how much better adaptive is than static, in percent:
// positive = adaptive better. higherBetter selects the direction.
func gainPct(static, adaptive float64, higherBetter bool) float64 {
	if static == 0 {
		return 0
	}
	if higherBetter {
		return 100 * (adaptive - static) / static
	}
	return 100 * (static - adaptive) / static
}

func adaptAB(static, adaptive adaptRunResult) adaptABResult {
	return adaptABResult{
		Static:            static,
		Adaptive:          adaptive,
		ThroughputGainPct: gainPct(static.Throughput, adaptive.Throughput, true),
		MeanLatGainPct:    gainPct(static.MeanMS, adaptive.MeanMS, false),
	}
}

// runAdaptbench is the `altbench adaptbench` entry point.
func runAdaptbench(args []string) error {
	fs := flag.NewFlagSet("adaptbench", flag.ContinueOnError)
	out := fs.String("o", "BENCH_adapt.json", "output JSON path ('-' for stdout only)")
	quick := fs.Bool("quick", false, "CI smoke mode: fewer jobs, relaxed (no-regression) thresholds")
	if err := fs.Parse(args); err != nil {
		return err
	}

	clients, warmup, jobsPerClient := 8, 12, 40
	if *quick {
		clients, warmup, jobsPerClient = 4, 10, 16
	}
	mixedKinds := []string{"adapt-dominant", "adapt-uncertain"}

	fmt.Printf("adaptbench — static vs adaptive speculation, %d clients × %d jobs (+%d warmup)\n",
		clients, jobsPerClient, warmup)

	// Mixed workload: dominant (PI < 1) and uncertain (PI > 1) kinds.
	mixedStatic, _, _, err := runAdaptLoop(clients, warmup, jobsPerClient, false, adaptMixedJob, nil)
	if err != nil {
		return fmt.Errorf("mixed static: %w", err)
	}
	mixedAdaptive, policy, kinds, err := runAdaptLoop(clients, warmup, jobsPerClient, true, adaptMixedJob, mixedKinds)
	if err != nil {
		return fmt.Errorf("mixed adaptive: %w", err)
	}
	mixed := adaptAB(mixedStatic, mixedAdaptive)

	// Uniform workload: the servebench job, where static is near-optimal.
	uniStatic, _, _, err := runAdaptLoop(clients, warmup, jobsPerClient, false, servebenchJob, nil)
	if err != nil {
		return fmt.Errorf("uniform static: %w", err)
	}
	uniAdaptive, _, _, err := runAdaptLoop(clients, warmup, jobsPerClient, true, servebenchJob, nil)
	if err != nil {
		return fmt.Errorf("uniform adaptive: %w", err)
	}
	uniform := adaptAB(uniStatic, uniAdaptive)

	dominant := kinds["adapt-dominant"]
	uncertain := kinds["adapt-uncertain"]
	mixedGoal := mixed.ThroughputGainPct >= 20 || mixed.MeanLatGainPct >= 20
	uniformOK := uniform.ThroughputGainPct >= -5 && uniform.MeanLatGainPct >= -5
	seqEngaged := dominant.SeqDecisions > 0
	specRetained := uncertain.SpecDecisions > 0

	fmt.Printf("\nmixed    static   %8.1f blocks/s  mean %6.2f ms  p99 %6.2f ms\n",
		mixedStatic.Throughput, mixedStatic.MeanMS, mixedStatic.P99MS)
	fmt.Printf("mixed    adaptive %8.1f blocks/s  mean %6.2f ms  p99 %6.2f ms  (+%.1f%% tput, +%.1f%% mean lat)\n",
		mixedAdaptive.Throughput, mixedAdaptive.MeanMS, mixedAdaptive.P99MS,
		mixed.ThroughputGainPct, mixed.MeanLatGainPct)
	fmt.Printf("uniform  static   %8.1f blocks/s  mean %6.2f ms\n", uniStatic.Throughput, uniStatic.MeanMS)
	fmt.Printf("uniform  adaptive %8.1f blocks/s  mean %6.2f ms  (%+.1f%% tput, %+.1f%% mean lat)\n",
		uniAdaptive.Throughput, uniAdaptive.MeanMS, uniform.ThroughputGainPct, uniform.MeanLatGainPct)
	fmt.Printf("decisions: dominant %d seq / %d spec / %d explore; uncertain %d seq / %d spec / %d explore; mean degree %.2f\n",
		dominant.SeqDecisions, dominant.SpecDecisions, dominant.ExploreDecisions,
		uncertain.SeqDecisions, uncertain.SpecDecisions, uncertain.ExploreDecisions, policy.MeanDegree)
	fmt.Printf("mixed ≥20%% goal: %v; uniform within 5%%: %v; sequential engaged on dominant: %v\n",
		mixedGoal, uniformOK, seqEngaged)

	if err := writeReport(*out, adaptBenchReport{
		reportMeta:          newReportMeta(),
		Quick:               *quick,
		Mixed:               mixed,
		Uniform:             uniform,
		MixedGoal:           mixedGoal,
		UniformOK:           uniformOK,
		Policy:              policy,
		DominantKind:        dominant,
		UncertainKind:       uncertain,
		SequentialEngaged:   seqEngaged,
		SpeculationRetained: specRetained,
	}); err != nil {
		return err
	}

	if !seqEngaged {
		return errors.New("adaptive controller never chose sequential execution for the dominant kind")
	}
	if !specRetained {
		return errors.New("adaptive controller stopped speculating on the uncertain kind")
	}
	if *quick {
		// CI smoke: adaptive must be no worse than static − 5% on both
		// workloads; the ≥20% mixed target needs the full run's sample
		// sizes to be stable.
		if mixed.ThroughputGainPct < -5 && mixed.MeanLatGainPct < -5 {
			return fmt.Errorf("adaptive regressed on the mixed workload: %.1f%% tput, %.1f%% mean lat",
				mixed.ThroughputGainPct, mixed.MeanLatGainPct)
		}
	} else if !mixedGoal {
		return fmt.Errorf("mixed-workload gain below 20%%: %.1f%% tput, %.1f%% mean lat",
			mixed.ThroughputGainPct, mixed.MeanLatGainPct)
	}
	if !uniformOK {
		return fmt.Errorf("adaptive regressed >5%% on the uniform workload: %+.1f%% tput, %+.1f%% mean lat",
			uniform.ThroughputGainPct, uniform.MeanLatGainPct)
	}
	return nil
}
