package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// Shared JSON-report plumbing for the real-benchmark subcommands
// (membench, selbench, servebench): every BENCH_*.json document carries
// the same generation header and is written the same way.

// reportMeta is the header every benchmark report shares. Embed it
// first so the fields lead the JSON document.
type reportMeta struct {
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
}

// newReportMeta stamps a header for a report generated now.
func newReportMeta() reportMeta {
	return reportMeta{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
}

// writeReport marshals report (indented, trailing newline) and writes
// it to path; "-" writes to stdout only.
func writeReport(path string, report any) error {
	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
