package main

import (
	"flag"
	"fmt"
	"testing"

	"altrun/internal/page"
)

// membench runs the real (not simulated) COW microbenchmarks against
// internal/page and emits machine-readable results. It backs the
// before/after numbers in EXPERIMENTS.md: fork cost vs address-space
// size (the paper's §4.4 table measured on the layered design), the
// steady-state write-fault cost, and the clone/commit churn of a full
// alternative-block lifecycle.
//
// Usage: altbench membench [-o BENCH_mem.json]

const membenchPageSize = 4096

// memBenchResult is one benchmark measurement in the JSON output.
type memBenchResult struct {
	Name        string  `json:"name"`
	Pages       int     `json:"pages,omitempty"`
	Bytes       int     `json:"bytes,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// memBenchReport is the BENCH_mem.json document.
type memBenchReport struct {
	reportMeta
	PageSize int              `json:"page_size"`
	Results  []memBenchResult `json:"results"`
}

// fillTable materializes `pages` fresh pages in a new table.
func fillTable(s *page.Store, pages int) (*page.Table, error) {
	t := s.NewTable()
	for n := 0; n < pages; n++ {
		if _, err := t.Write(int64(n)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// benchForkScaling measures Clone+Release of a table of the given size.
// On the layered design this must be flat in `pages`.
func benchForkScaling(pages int) (testing.BenchmarkResult, error) {
	s := page.NewStore(membenchPageSize)
	parent, err := fillTable(s, pages)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, err := parent.Clone()
			if err != nil {
				benchErr = err
				b.FailNow()
			}
			c.Release()
		}
	})
	return res, benchErr
}

// benchWriteFault measures the steady-state COW fault: a child sweeps
// writes across a shared 1024-page parent, re-cloning each sweep so
// released buffers feed the pool.
func benchWriteFault() (testing.BenchmarkResult, error) {
	const pages = 1024
	s := page.NewStore(membenchPageSize)
	parent, err := fillTable(s, pages)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		child, err := parent.Clone()
		if err != nil {
			benchErr = err
			b.FailNow()
		}
		for i := 0; i < b.N; i++ {
			if i%pages == 0 && i > 0 {
				child.Release()
				if child, err = parent.Clone(); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
			if _, err := child.Write(int64(i % pages)); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
		child.Release()
	})
	return res, benchErr
}

// benchCloneCommitChurn measures a whole block lifecycle: fork, a few
// writes, commit (Swap), release — the page-table work RunAlt does per
// alternative block.
func benchCloneCommitChurn() (testing.BenchmarkResult, error) {
	const pages = 64
	s := page.NewStore(membenchPageSize)
	parent, err := fillTable(s, pages)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			child, err := parent.Clone()
			if err != nil {
				benchErr = err
				b.FailNow()
			}
			for w := 0; w < 4; w++ {
				if _, err := child.Write(int64((i*4 + w) % pages)); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
			if err := parent.Swap(child); err != nil {
				benchErr = err
				b.FailNow()
			}
			child.Release()
		}
	})
	return res, benchErr
}

func toResult(name string, pages int, r testing.BenchmarkResult) memBenchResult {
	return memBenchResult{
		Name:        name,
		Pages:       pages,
		Bytes:       pages * membenchPageSize,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// runMembench is the `altbench membench` entry point.
func runMembench(args []string) error {
	fs := flag.NewFlagSet("membench", flag.ContinueOnError)
	out := fs.String("o", "BENCH_mem.json", "output JSON path ('-' for stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var results []memBenchResult

	fmt.Println("membench — real COW page-table microbenchmarks")
	fmt.Printf("%-28s %12s %12s %12s\n", "benchmark", "ns/op", "allocs/op", "B/op")
	for _, kb := range []int{64, 256, 1024, 4096} {
		pages := kb * 1024 / membenchPageSize
		r, err := benchForkScaling(pages)
		if err != nil {
			return fmt.Errorf("fork-scaling %dKB: %w", kb, err)
		}
		res := toResult(fmt.Sprintf("ForkScaling/%dKB", kb), pages, r)
		results = append(results, res)
		fmt.Printf("%-28s %12.1f %12d %12d\n", res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}
	if r, err := benchWriteFault(); err != nil {
		return fmt.Errorf("write-fault: %w", err)
	} else {
		res := toResult("WriteFault", 1024, r)
		results = append(results, res)
		fmt.Printf("%-28s %12.1f %12d %12d\n", res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}
	if r, err := benchCloneCommitChurn(); err != nil {
		return fmt.Errorf("clone-commit-churn: %w", err)
	} else {
		res := toResult("CloneCommitChurn", 64, r)
		results = append(results, res)
		fmt.Printf("%-28s %12.1f %12d %12d\n", res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}

	// Flat fork check: the headline claim is O(1) fork, so flag a
	// regression right in the tool instead of leaving it to eyeballs.
	small, large := results[0].NsPerOp, results[3].NsPerOp
	if small > 0 {
		ratio := large / small
		verdict := "flat (O(1) fork)"
		if ratio > 2 {
			verdict = "NOT FLAT — fork scales with size"
		}
		fmt.Printf("\nfork 4MB/64KB ratio: %.2fx — %s\n", ratio, verdict)
	}

	return writeReport(*out, memBenchReport{
		reportMeta: newReportMeta(),
		PageSize:   membenchPageSize,
		Results:    results,
	})
}
