package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	appstm "altrun/apps/stm"
	"altrun/internal/core"
	"altrun/internal/serve"
	istm "altrun/internal/stm"
)

// stmbench measures the cost of concurrency on the contended-store STM
// workload: at each contention level (key-choice skew), a stream of
// transaction blocks runs twice — speculatively (all alternatives race
// over the shared sink pages through the message layer) and as the
// sequential fall-through baseline (MaxDegree=1) — and the tool records
// committed-block throughput next to the message-layer machinery the
// speculation paid for it: receiver splits, ignored deliveries, and
// commit-time eliminations of contradicted copies.
//
// On a small box the sequential baseline usually wins raw throughput
// (the first alternative rarely aborts, and speculation multiplies
// store copies); the point of the curve is the price, not a speedup —
// how split/elimination traffic grows with contention while the
// committed image stays exactly the winner's sequential replay.
//
// Usage: altbench stmbench [-quick] [-o BENCH_stm.json]

// stmModeResult is one (contention level, execution mode) cell.
type stmModeResult struct {
	MaxDegree      int     `json:"max_degree"`
	Blocks         int     `json:"blocks"`
	MeanMS         float64 `json:"mean_ms"`
	Throughput     float64 `json:"committed_blocks_per_sec"`
	MsgSent        int     `json:"msg_sent"`
	MsgAccepted    int     `json:"msg_accepted"`
	MsgIgnored     int     `json:"msg_ignored"`
	MsgSplits      int     `json:"msg_splits"`
	Eliminations   int64   `json:"eliminations"`
	SplitsPerBlock float64 `json:"splits_per_block"`
}

// stmLevelResult is one contention level: the same block stream run
// speculatively and sequentially.
type stmLevelResult struct {
	Name        string        `json:"name"`
	Zipf        float64       `json:"zipf"`
	Keys        int           `json:"keys"`
	Speculative stmModeResult `json:"speculative"`
	Sequential  stmModeResult `json:"sequential"`
}

// stmBenchReport is the BENCH_stm.json document.
type stmBenchReport struct {
	reportMeta
	Alts       int              `json:"alts"`
	Ops        int              `json:"ops"`
	ReadFrac   float64          `json:"read_frac"`
	AbortEvery int              `json:"abort_every"`
	Levels     []stmLevelResult `json:"levels"`
}

// Fixed block shape: 4 alternatives × 10 operations, half reads, with
// every third alternative abort-injected so the block exercises the
// failure path without ever losing its fall-through winner.
const (
	stmbenchAlts       = 4
	stmbenchOps        = 10
	stmbenchReadFrac   = 0.5
	stmbenchAbortEvery = 3
	stmbenchKeys       = 8
)

// stmbenchLevels are the contention levels: uniform key choice, then
// two zipf skews concentrating the same operation stream onto ever
// hotter pages.
var stmbenchLevels = []struct {
	name string
	zipf float64
}{
	{"uniform", 0},
	{"zipf-1.2", 1.2},
	{"zipf-2.5", 2.5},
}

// runStmCell runs blocks transaction blocks at one contention level in
// one mode (maxDegree 0 = full speculation, 1 = sequential baseline)
// on a fresh runtime, so the message and elimination counters are the
// cell's own.
func runStmCell(zipf float64, maxDegree, blocks int, seedBase int64) (stmModeResult, error) {
	rt := core.New(core.Config{})
	pool, err := serve.NewPool(serve.Config{Workers: 2, SpecTokens: 32, Runtime: rt})
	if err != nil {
		return stmModeResult{}, err
	}
	defer pool.Drain(context.Background())

	degree := maxDegree
	if degree == 0 {
		degree = stmbenchAlts
	}
	var totalMS float64
	start := time.Now()
	for b := 0; b < blocks; b++ {
		spec := istm.TxnSpec{
			TxnID:      seedBase + int64(b),
			Keys:       stmbenchKeys,
			Alts:       stmbenchAlts,
			Ops:        stmbenchOps,
			ReadFrac:   stmbenchReadFrac,
			Zipf:       zipf,
			AbortEvery: stmbenchAbortEvery,
			Seed:       seedBase + int64(b),
			DeadlineMS: 30_000,
			MaxDegree:  degree,
		}
		tk, err := pool.Submit(appstm.JobFromSpec(spec))
		if err != nil {
			return stmModeResult{}, fmt.Errorf("block %d submit: %w", b, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		res, err := tk.Wait(ctx)
		cancel()
		if err != nil {
			return stmModeResult{}, fmt.Errorf("block %d wait: %w", b, err)
		}
		if res.Status != serve.StatusDone {
			return stmModeResult{}, fmt.Errorf("block %d: status %v (err %v), want done",
				b, res.Status, res.Err)
		}
		// Extract already checked the committed image against the
		// sequential oracle (CheckFinal); a done block is a correct one.
		totalMS += float64(res.Elapsed.Nanoseconds()) / 1e6
	}
	elapsed := time.Since(start)

	ms := rt.MsgStats()
	return stmModeResult{
		MaxDegree:      degree,
		Blocks:         blocks,
		MeanMS:         totalMS / float64(blocks),
		Throughput:     float64(blocks) / elapsed.Seconds(),
		MsgSent:        ms.Sent,
		MsgAccepted:    ms.Accepted,
		MsgIgnored:     ms.Ignored,
		MsgSplits:      ms.Splits,
		Eliminations:   rt.SelStats().Eliminations,
		SplitsPerBlock: float64(ms.Splits) / float64(blocks),
	}, nil
}

// runStmbench is the `altbench stmbench` entry point.
func runStmbench(args []string) error {
	fs := flag.NewFlagSet("stmbench", flag.ContinueOnError)
	out := fs.String("o", "BENCH_stm.json", "output JSON path ('-' for stdout only)")
	quick := fs.Bool("quick", false, "CI smoke mode: few blocks per cell")
	minTput := fs.Float64("min-tput", 0.5,
		"gate: minimum speculative committed blocks/s at the lowest contention level")
	if err := fs.Parse(args); err != nil {
		return err
	}

	blocks := 30
	if *quick {
		blocks = 6
	}

	fmt.Println("stmbench — contended-store transactions, speculative vs sequential fall-through")
	fmt.Printf("%-10s %-12s %8s %10s %12s %8s %8s %10s %8s\n",
		"level", "mode", "blocks", "mean ms", "blocks/s", "sent", "ignored", "splits", "elims")
	var levels []stmLevelResult
	for i, lv := range stmbenchLevels {
		seedBase := int64(1000 * (i + 1))
		spec, err := runStmCell(lv.zipf, 0, blocks, seedBase)
		if err != nil {
			return fmt.Errorf("level %s speculative: %w", lv.name, err)
		}
		seq, err := runStmCell(lv.zipf, 1, blocks, seedBase)
		if err != nil {
			return fmt.Errorf("level %s sequential: %w", lv.name, err)
		}
		levels = append(levels, stmLevelResult{
			Name: lv.name, Zipf: lv.zipf, Keys: stmbenchKeys,
			Speculative: spec, Sequential: seq,
		})
		for _, row := range []struct {
			mode string
			r    stmModeResult
		}{{"speculative", spec}, {"sequential", seq}} {
			fmt.Printf("%-10s %-12s %8d %10.2f %12.1f %8d %8d %10d %8d\n",
				lv.name, row.mode, row.r.Blocks, row.r.MeanMS, row.r.Throughput,
				row.r.MsgSent, row.r.MsgIgnored, row.r.MsgSplits, row.r.Eliminations)
		}
	}

	// Gates: the curve must show the machinery actually engaging. At
	// the highest contention the speculative run must have split store
	// copies and eliminated the contradicted ones; at the lowest it
	// must still commit blocks at a usable rate.
	high := levels[len(levels)-1].Speculative
	if high.MsgSplits == 0 || high.Eliminations == 0 {
		return fmt.Errorf("gate: high-contention speculative run shows no world splitting "+
			"(splits=%d eliminations=%d)", high.MsgSplits, high.Eliminations)
	}
	low := levels[0].Speculative
	if low.Throughput < *minTput {
		return fmt.Errorf("gate: low-contention speculative throughput %.2f blocks/s below floor %.2f",
			low.Throughput, *minTput)
	}
	fmt.Printf("\ngates held: high-contention splits=%d eliminations=%d; low-contention %.1f blocks/s >= %.1f\n",
		high.MsgSplits, high.Eliminations, low.Throughput, *minTput)

	return writeReport(*out, stmBenchReport{
		reportMeta: newReportMeta(),
		Alts:       stmbenchAlts,
		Ops:        stmbenchOps,
		ReadFrac:   stmbenchReadFrac,
		AbortEvery: stmbenchAbortEvery,
		Levels:     levels,
	})
}
