// Command altbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index E1-E14).
//
// Usage:
//
//	altbench             # run everything
//	altbench -run e3,e4  # run a subset
//	altbench -list       # list experiments
//	altbench membench    # real COW microbenchmarks → BENCH_mem.json
//	altbench distbench   # local vs consensus commit over TCP → BENCH_dist.json
//	altbench stmbench    # contended-store STM cost-of-concurrency → BENCH_stm.json
//
// All experiments run in the deterministic simulator; output is
// reproducible across machines.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"altrun/internal/experiments"

	// distbench crosses the TCP fabric's framing; the central
	// registration point supplies every protocol message's wire codec.
	_ "altrun/internal/transport/codec"
)

type experiment struct {
	name string
	desc string
	run  func() (string, error)
}

func registry() []experiment {
	return []experiment{
		{"e1", "§4.3 analytic PI table", func() (string, error) {
			return experiments.E1().Format(), nil
		}},
		{"e2", "§4.3 PI table measured in the simulator", wrap(experiments.E2)},
		{"e3", "§4.4 COW fork latency (3B2, HP9000)", wrap(experiments.E3)},
		{"e4", "§4.4 page-copy cost vs fraction written", wrap(experiments.E4)},
		{"e5", "§4.4 remote fork (checkpoint/ship/restore)", wrap(experiments.E5)},
		{"e6", "Fig. 1+2 block execution transcript", wrap(experiments.E6)},
		{"e7", "§5.1 recovery blocks: sequential vs concurrent", wrap(experiments.E7)},
		{"e8", "§5.2 OR-parallel Prolog", wrap(experiments.E8)},
		{"e9", "§3.2.1 sync vs async sibling elimination", wrap(experiments.E9)},
		{"e10", "§3.2.1 majority-consensus commit", wrap(experiments.E10)},
		{"e11", "§4.1 wasted work vs dispersion", wrap(experiments.E11)},
		{"e12", "§4.2 schemes A/B/C", wrap(experiments.E12)},
		{"e13", "§3.4.2 multiple-worlds message layer", wrap(experiments.E13)},
		{"e14", "§7 overhead crossover", wrap(experiments.E14)},
		{"e15", "ablation: COW vs full-copy spawn", wrap(experiments.E15)},
		{"e16", "ablation: guard placement (pre-spawn / child / sync-point)", wrap(experiments.E16)},
		{"e17", "§4.2 real vs virtual concurrency", wrap(experiments.E17)},
	}
}

// wrap adapts an experiment constructor returning a formattable result.
func wrap[T interface{ Format() string }](f func() (T, error)) func() (string, error) {
	return func() (string, error) {
		res, err := f()
		if err != nil {
			return "", err
		}
		return res.Format(), nil
	}
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "membench" {
		if err := runMembench(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "altbench membench:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "selbench" {
		if err := runSelbench(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "altbench selbench:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "servebench" {
		if err := runServebench(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "altbench servebench:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "obsbench" {
		if err := runObsbench(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "altbench obsbench:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "adaptbench" {
		if err := runAdaptbench(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "altbench adaptbench:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "stmbench" {
		if err := runStmbench(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "altbench stmbench:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "distbench" {
		if err := runDistbench(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "altbench distbench:", err)
			os.Exit(1)
		}
		return
	}
	run := flag.String("run", "all", "comma-separated experiment ids (e1..e14) or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()
	if err := realMain(*run, *list); err != nil {
		fmt.Fprintln(os.Stderr, "altbench:", err)
		os.Exit(1)
	}
}

func realMain(run string, list bool) error {
	exps := registry()
	if list {
		for _, e := range exps {
			fmt.Printf("%-5s %s\n", e.name, e.desc)
		}
		return nil
	}
	selected := make(map[string]bool)
	if run != "all" {
		for _, name := range strings.Split(run, ",") {
			selected[strings.TrimSpace(strings.ToLower(name))] = true
		}
		known := make(map[string]bool, len(exps))
		for _, e := range exps {
			known[e.name] = true
		}
		var unknown []string
		for name := range selected {
			if !known[name] {
				unknown = append(unknown, name)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			return fmt.Errorf("unknown experiments: %s", strings.Join(unknown, ", "))
		}
	}
	for _, e := range exps {
		if run != "all" && !selected[e.name] {
			continue
		}
		out, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Println(out)
	}
	return nil
}
