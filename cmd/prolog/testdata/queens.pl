% N-queens: boards are permutations of column numbers; a placement is
% safe when no queen shares a diagonal. Uses the prelude (-prelude) for
% permutation/2 and the plus/3 and \= builtins.
queens(L, Qs) :- permutation(L, Qs), safe(Qs).

safe([]).
safe([Q|Qs]) :- noattack(Q, Qs, 1), safe(Qs).

noattack(_, [], _).
noattack(Q, [Q1|Qs], D) :-
    Q \= Q1,
    plus(Q1, D, S1), Q \= S1,
    plus(Q, D, S2), Q1 \= S2,
    plus(D, 1, D1),
    noattack(Q, Qs, D1).
