package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	return string(buf[:n]), ferr
}

const family = "parent(tom,bob). parent(tom,liz). anc(X,Y) :- parent(X,Y). anc(X,Y) :- parent(X,Z), anc(Z,Y)."

func TestSequentialFirst(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", family, "anc(tom,X)", false, false, time.Microsecond, 1, 0, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "X=bob") {
		t.Errorf("output = %q", out)
	}
}

func TestSequentialAll(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", family, "parent(tom,X)", true, false, time.Microsecond, 1, 0, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "X=bob") || !strings.Contains(out, "X=liz") {
		t.Errorf("output = %q", out)
	}
	if !strings.Contains(out, "2 solutions") {
		t.Errorf("missing solution count: %q", out)
	}
}

func TestNoSolution(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", family, "parent(liz,X)", false, false, time.Microsecond, 1, 0, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no.") {
		t.Errorf("output = %q", out)
	}
}

func TestGroundQueryYes(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", family, "parent(tom,bob)", false, false, time.Microsecond, 1, 0, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "yes.") {
		t.Errorf("output = %q", out)
	}
}

func TestParallelMode(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", family, "anc(tom,X)", false, true, time.Microsecond, 1, 0, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "X=") || !strings.Contains(out, "simulated time") {
		t.Errorf("output = %q", out)
	}
}

func TestParallelNoSolution(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", family, "parent(liz,X)", false, true, time.Microsecond, 1, 0, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no.") {
		t.Errorf("output = %q", out)
	}
}

func TestFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fam.pl")
	if err := os.WriteFile(path, []byte(family), 0o600); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run(path, "", "parent(tom,X)", false, false, time.Microsecond, 1, 0, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "X=bob") {
		t.Errorf("output = %q", out)
	}
}

func TestErrors(t *testing.T) {
	if err := run("", family, "", false, false, time.Microsecond, 1, 0, false); err == nil {
		t.Error("missing query must fail")
	}
	if err := run("", "", "p(X)", false, false, time.Microsecond, 1, 0, false); err == nil {
		t.Error("empty program must fail")
	}
	if err := run("/nonexistent/file.pl", "", "p(X)", false, false, time.Microsecond, 1, 0, false); err == nil {
		t.Error("missing file must fail")
	}
	if err := run("", "malformed(", "p(X)", false, false, time.Microsecond, 1, 0, false); err == nil {
		t.Error("parse error must fail")
	}
	if err := run("", family, "anc(tom", false, false, time.Microsecond, 1, 0, false); err == nil {
		t.Error("bad query must fail")
	}
}

func TestPreludeFlag(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", "likes(a). likes(b).", "reverse([a,b,c], R)", false, false, time.Microsecond, 1, 0, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "R=[c,b,a]") {
		t.Errorf("output = %q", out)
	}
	// Without the prelude the same query has no clauses.
	out, err = capture(t, func() error {
		return run("", "likes(a).", "reverse([a,b,c], R)", false, false, time.Microsecond, 1, 0, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no.") {
		t.Errorf("output = %q", out)
	}
}

func TestQueensProgramFile(t *testing.T) {
	out, err := capture(t, func() error {
		return run("testdata/queens.pl", "", "queens([1,2,3,4], Qs)", true, false, time.Microsecond, 1, 0, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Qs=[2,4,1,3]") || !strings.Contains(out, "Qs=[3,1,4,2]") {
		t.Errorf("queens output = %q", out)
	}
	// OR-parallel mode on the same file.
	out, err = capture(t, func() error {
		return run("testdata/queens.pl", "", "queens([1,2,3,4], Qs)", false, true, time.Microsecond, 2, 0, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Qs=[") {
		t.Errorf("parallel queens output = %q", out)
	}
}
