// Command prolog is a small Prolog interpreter with optional
// OR-parallel query execution over the speculative runtime (§5.2 of
// the paper).
//
// Usage:
//
//	prolog -f program.pl -q 'anc(tom, X)'            # sequential, first solution
//	prolog -f program.pl -q 'anc(tom, X)' -all       # all solutions
//	prolog -f program.pl -q 'pick(X)' -parallel      # OR-parallel (simulated time)
//	prolog -e 'p(a). p(b).' -q 'p(X)' -all           # inline program
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"altrun/internal/core"
	"altrun/internal/prolog"
	"altrun/internal/sim"
)

func main() {
	var (
		file     = flag.String("f", "", "program file")
		expr     = flag.String("e", "", "inline program text")
		query    = flag.String("q", "", "query (required)")
		all      = flag.Bool("all", false, "print all solutions (sequential only)")
		parallel = flag.Bool("parallel", false, "OR-parallel execution in the simulator")
		stepCost = flag.Duration("stepcost", 100*time.Microsecond, "simulated cost per inference (parallel mode)")
		depth    = flag.Int("ordepth", 1, "choice-point racing depth (parallel mode)")
		limit    = flag.Int("limit", 0, "solution limit for -all (0 = unlimited)")
		prelude  = flag.Bool("prelude", false, "preload the list-predicate prelude (append, member, reverse, ...)")
	)
	flag.Parse()
	if err := run(*file, *expr, *query, *all, *parallel, *stepCost, *depth, *limit, *prelude); err != nil {
		fmt.Fprintln(os.Stderr, "prolog:", err)
		os.Exit(1)
	}
}

func run(file, expr, query string, all, parallel bool, stepCost time.Duration, orDepth, limit int, prelude bool) error {
	if query == "" {
		return fmt.Errorf("a query is required (-q)")
	}
	db := prolog.NewDB()
	if prelude {
		if err := db.Load(prolog.Prelude); err != nil {
			return fmt.Errorf("prelude: %w", err)
		}
	}
	if file != "" {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		if err := db.Load(string(src)); err != nil {
			return err
		}
	}
	if expr != "" {
		if err := db.Load(expr); err != nil {
			return err
		}
	}
	if db.Len() == 0 {
		return fmt.Errorf("empty program (use -f or -e)")
	}
	goals, qvars, err := prolog.ParseQuery(query)
	if err != nil {
		return err
	}

	if parallel {
		return runParallel(db, goals, qvars, stepCost, orDepth)
	}

	s := &prolog.Solver{DB: db}
	if all {
		sols, err := s.SolveAll(goals, qvars, limit)
		if err != nil {
			return err
		}
		if len(sols) == 0 {
			fmt.Println("no.")
			return nil
		}
		for _, sol := range sols {
			printSolution(sol)
		}
		fmt.Printf("%% %d solutions, %d inferences\n", len(sols), s.Steps())
		return nil
	}
	sol, found, err := s.SolveFirst(goals, qvars)
	if err != nil {
		return err
	}
	if !found {
		fmt.Println("no.")
		return nil
	}
	printSolution(sol)
	fmt.Printf("%% %d inferences\n", s.Steps())
	return nil
}

func runParallel(db *prolog.DB, goals []prolog.Term, qvars []prolog.Var, stepCost time.Duration, orDepth int) error {
	profile := sim.ProfileSharedMemory(8)
	rt := core.NewSim(core.SimConfig{Profile: profile})
	o := &prolog.OrSolver{DB: db, Cfg: prolog.OrConfig{StepCost: stepCost, Depth: orDepth}}
	var (
		sol      prolog.Solution
		solveErr error
		elapsed  time.Duration
	)
	rt.GoRoot("query", 1<<16, func(w *core.World) {
		start := rt.Now()
		sol, solveErr = o.SolveFirst(w, goals, qvars)
		elapsed = rt.Now().Sub(start)
	})
	if err := rt.Run(); err != nil {
		return err
	}
	if solveErr != nil {
		if solveErr == prolog.ErrNoSolution {
			fmt.Println("no.")
			return nil
		}
		return solveErr
	}
	printSolution(sol)
	fmt.Printf("%% %d inferences (all branches), %v simulated time on %s\n",
		o.Steps(), elapsed, profile.Name)
	return nil
}

func printSolution(sol prolog.Solution) {
	if len(sol) == 0 {
		fmt.Println("yes.")
		return
	}
	fmt.Println(sol.String())
}
