// Command rbrun demonstrates distributed execution of recovery blocks
// (§5.1 of the paper): independently-written sort versions — one
// optionally buggy — guarded by an acceptance test, executed either
// sequentially (try, test, roll back, retry) or concurrently
// (fastest acceptable version wins).
//
// Usage:
//
//	rbrun                       # both modes on a pathological input
//	rbrun -n 2000 -input random # choose input shape and size
//	rbrun -faulty               # inject a logic fault into the primary
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"altrun/internal/core"
	"altrun/internal/recovery"
	"altrun/internal/sim"
	"altrun/internal/workload"
)

func main() {
	var (
		n      = flag.Int("n", 1000, "array size")
		input  = flag.String("input", "sorted", "input shape: sorted|random|reversed|nearly")
		faulty = flag.Bool("faulty", false, "inject a logic fault into the primary version")
		seed   = flag.Int64("seed", 1, "random seed for input generation")
	)
	flag.Parse()
	if err := run(*n, *input, *faulty, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "rbrun:", err)
		os.Exit(1)
	}
}

func run(n int, input string, faulty bool, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	var xs []int
	switch input {
	case "sorted":
		xs = workload.SortedList(n)
	case "random":
		xs = workload.RandomList(n, rng)
	case "reversed":
		xs = workload.ReversedList(n)
	case "nearly":
		xs = workload.NearlySorted(n, n/100+1, rng)
	default:
		return fmt.Errorf("unknown input shape %q", input)
	}

	const perCompare = time.Microsecond
	block := &recovery.Block{
		Name: "sortblock",
		Alternates: []recovery.Alternate{
			recovery.SortVersion("primary-quicksort", workload.NaiveQuicksort, perCompare, faulty),
			recovery.SortVersion("secondary-heapsort", workload.Heapsort, perCompare, false),
			recovery.SortVersion("tertiary-insertion", workload.InsertionSort, perCompare, false),
		},
		AcceptanceTest: recovery.SortedAcceptanceTest(recovery.Sum(xs)),
	}

	fmt.Printf("recovery block %q: %d alternates, input=%s n=%d faulty-primary=%v\n\n",
		block.Name, len(block.Alternates), input, n, faulty)

	seqElapsed, seqWho, err := execute(xs, block, false)
	if err != nil {
		return fmt.Errorf("sequential: %w", err)
	}
	fmt.Printf("sequential:  accepted %-20s in %v (simulated)\n", seqWho, seqElapsed)

	conElapsed, conWho, err := execute(xs, block, true)
	if err != nil {
		return fmt.Errorf("concurrent: %w", err)
	}
	fmt.Printf("concurrent:  accepted %-20s in %v (simulated)\n", conWho, conElapsed)
	fmt.Printf("\nspeedup: %.2fx\n", float64(seqElapsed)/float64(conElapsed))
	return nil
}

func execute(xs []int, block *recovery.Block, concurrent bool) (time.Duration, string, error) {
	profile := sim.MachineProfile{Name: "demo", PageSize: 4096, CPUs: 0,
		ForkBase: 500 * time.Microsecond}
	rt := core.NewSim(core.SimConfig{Profile: profile})
	var (
		elapsed time.Duration
		who     string
		failure error
	)
	rt.GoRoot("root", recovery.ArraySpaceSize(len(xs)), func(w *core.World) {
		if err := recovery.WriteIntArray(w, xs); err != nil {
			failure = err
			return
		}
		start := rt.Now()
		if concurrent {
			res, err := block.RunConcurrent(w, recovery.DefaultConcurrentOptions(0))
			if err != nil {
				failure = err
				return
			}
			who = res.Name
		} else {
			idx, err := block.RunSequential(w)
			if err != nil {
				failure = err
				return
			}
			who = block.Alternates[idx].Name
		}
		elapsed = rt.Now().Sub(start)
		got, err := recovery.ReadIntArray(w)
		if err != nil {
			failure = err
			return
		}
		if !workload.IsSorted(got) {
			failure = fmt.Errorf("accepted result is not sorted")
		}
	})
	if err := rt.Run(); err != nil {
		return 0, "", err
	}
	return elapsed, who, failure
}
