package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	return string(buf[:n]), ferr
}

func TestSortedInput(t *testing.T) {
	out, err := capture(t, func() error { return run(300, "sorted", false, 1) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sequential:") || !strings.Contains(out, "concurrent:") {
		t.Errorf("output = %q", out)
	}
	if !strings.Contains(out, "speedup:") {
		t.Errorf("missing speedup line: %q", out)
	}
}

func TestAllInputShapes(t *testing.T) {
	for _, shape := range []string{"sorted", "random", "reversed", "nearly"} {
		if _, err := capture(t, func() error { return run(100, shape, false, 2) }); err != nil {
			t.Errorf("shape %s: %v", shape, err)
		}
	}
}

func TestFaultyPrimary(t *testing.T) {
	out, err := capture(t, func() error { return run(200, "random", true, 3) })
	if err != nil {
		t.Fatal(err)
	}
	// With a faulty primary, the committed alternate is never the
	// primary.
	if strings.Contains(out, "accepted primary-quicksort") {
		t.Errorf("faulty primary was accepted:\n%s", out)
	}
}

func TestUnknownShape(t *testing.T) {
	if err := run(10, "spiral", false, 1); err == nil {
		t.Error("unknown input shape must fail")
	}
}
