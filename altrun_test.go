package altrun_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"altrun"
)

func TestFacadeRealMode(t *testing.T) {
	rt, err := altrun.New(altrun.Config{})
	if err != nil {
		t.Fatal(err)
	}
	root, err := rt.NewRootWorld("main", 4096)
	if err != nil {
		t.Fatal(err)
	}
	res, err := root.RunAlt(altrun.Options{},
		altrun.Alt{Name: "fast", Body: func(w *altrun.World) error {
			return w.WriteAt([]byte("ok"), 0)
		}},
		altrun.Alt{Name: "slow", Body: func(w *altrun.World) error {
			w.Sleep(time.Second)
			return nil
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "fast" {
		t.Fatalf("winner = %q", res.Name)
	}
	rt.Wait()
}

func TestFacadeSimMode(t *testing.T) {
	rt := altrun.NewSim(altrun.SimConfig{Profile: altrun.ProfileHP9000()})
	var res altrun.Result
	rt.GoRoot("main", 64<<10, func(w *altrun.World) {
		r, err := w.RunAlt(altrun.Options{},
			altrun.Alt{Name: "a", Body: func(cw *altrun.World) error {
				cw.Compute(time.Second)
				return nil
			}},
			altrun.Alt{Name: "b", Body: func(cw *altrun.World) error {
				cw.Compute(10 * time.Second)
				return nil
			}},
		)
		if err != nil {
			t.Error(err)
			return
		}
		res = r
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Name != "a" {
		t.Fatalf("winner = %q", res.Name)
	}
	// The HP profile charges fork costs, so elapsed > pure compute.
	if res.Elapsed <= time.Second {
		t.Fatalf("elapsed = %v, want > 1s (modelled overhead)", res.Elapsed)
	}
}

func TestProfiles(t *testing.T) {
	if altrun.Profile3B2().Name == "" || altrun.ProfileHP9000().Name == "" {
		t.Fatal("profiles must be named")
	}
	if altrun.ProfileSharedMemory(8).CPUs != 8 {
		t.Fatal("shared-memory CPUs")
	}
}

func TestRaceFirstSuccess(t *testing.T) {
	idx, val, err := altrun.Race(context.Background(),
		func(ctx context.Context) (string, error) {
			select {
			case <-time.After(time.Second):
				return "slow", nil
			case <-ctx.Done():
				return "", ctx.Err()
			}
		},
		func(ctx context.Context) (string, error) {
			return "fast", nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 || val != "fast" {
		t.Fatalf("winner = %d %q", idx, val)
	}
}

func TestRaceAllFail(t *testing.T) {
	boom := errors.New("boom")
	_, _, err := altrun.Race(context.Background(),
		func(ctx context.Context) (int, error) { return 0, boom },
		func(ctx context.Context) (int, error) { return 0, boom },
	)
	if !errors.Is(err, altrun.ErrNoWinner) || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestRaceEmpty(t *testing.T) {
	_, _, err := altrun.Race[int](context.Background())
	if !errors.Is(err, altrun.ErrNoWinner) {
		t.Fatalf("err = %v", err)
	}
}

func TestRaceCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := altrun.Race(ctx,
		func(ctx context.Context) (int, error) {
			<-ctx.Done()
			return 0, ctx.Err()
		},
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestRaceLosersCancelled(t *testing.T) {
	cancelled := make(chan struct{})
	_, _, err := altrun.Race(context.Background(),
		func(ctx context.Context) (int, error) { return 42, nil },
		func(ctx context.Context) (int, error) {
			<-ctx.Done()
			close(cancelled)
			return 0, ctx.Err()
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-cancelled:
	default:
		t.Fatal("loser was not cancelled before Race returned")
	}
}

func TestRaceDeadlineBeforeWinner(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := altrun.Race(ctx,
		func(ctx context.Context) (int, error) {
			select {
			case <-time.After(10 * time.Second):
				return 1, nil
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		},
		func(ctx context.Context) (int, error) {
			select {
			case <-time.After(10 * time.Second):
				return 2, nil
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		},
	)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline did not cut the race short")
	}
}

func TestRaceCancelMidRace(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	running := make(chan struct{})
	go func() {
		<-running
		cancel()
	}()
	_, _, err := altrun.Race(ctx,
		func(ctx context.Context) (int, error) {
			close(running)
			<-ctx.Done()
			return 0, ctx.Err()
		},
		func(ctx context.Context) (int, error) {
			<-ctx.Done()
			return 0, ctx.Err()
		},
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

func TestRaceWinnerBeatsDeadline(t *testing.T) {
	// A winner that commits before the deadline must win even though
	// its siblings are still blocked when the deadline passes.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	idx, val, err := altrun.Race(ctx,
		func(ctx context.Context) (string, error) { return "quick", nil },
		func(ctx context.Context) (string, error) {
			<-ctx.Done()
			return "", ctx.Err()
		},
	)
	if err != nil || idx != 0 || val != "quick" {
		t.Fatalf("got %d %q %v", idx, val, err)
	}
}
