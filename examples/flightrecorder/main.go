// Flightrecorder: the speculation flight recorder watching a live
// recovery block. One sorting job (primary fault-injected, so the
// alternates race for real) runs through a serve.Pool with a rate-1
// obs.Recorder attached; the example then prints the paper's overhead
// decomposition for the block — setup (fork + page-map inheritance),
// runtime (CPU + page copying), selection (elimination + commit) — and
// the measured vs predicted performance improvement factor
// PI = τ(C_mean) / (τ(C_best) + τ(overhead)), and dumps the block as
// Chrome trace-event JSON loadable in Perfetto or chrome://tracing.
//
// Run with: go run ./examples/flightrecorder
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	apprecovery "altrun/apps/recovery"
	"altrun/internal/obs"
	"altrun/internal/serve"
)

func main() {
	rec := obs.NewRecorder(obs.Config{SampleRate: 1})
	pool, err := serve.NewPool(serve.Config{Workers: 2, SpecTokens: 6, Recorder: rec})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = pool.Close(ctx)
	}()

	input := []int{9, 4, 7, 1, 8, 2, 6, 3, 5}
	job := apprecovery.SortJob(input, 50*time.Microsecond, true, 10*time.Second)

	// Run the block a few times: the first runs seed the pool's EWMA
	// latency history, so the last block carries a predicted PI to
	// compare the measurement against.
	var last *obs.Timeline
	for i := 0; i < 4; i++ {
		tk, err := pool.Submit(job)
		if err != nil {
			log.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		res, err := tk.Wait(ctx)
		cancel()
		if err != nil || res.Status != serve.StatusDone {
			log.Fatalf("job %d: %+v %v", i, res, err)
		}
		tl, ok := rec.Timeline(tk.ID())
		if !ok {
			log.Fatalf("job %d not sampled at rate 1", i)
		}
		last = tl
		if i == 0 {
			fmt.Printf("recovery block committed %q (primary fault-injected, %d alternates raced)\n\n",
				res.Winner, tl.Spawns)
		}
	}

	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	fmt.Printf("block %d (%s) — winner %q after %d wave(s)\n", last.ID, last.Kind, last.Winner, last.Waves)
	fmt.Printf("  wall time    %8.3f ms\n", ms(last.Wall))
	fmt.Printf("  ├─ setup     %8.3f ms  (fork + page-map inheritance, %d spawns)\n", ms(last.Setup), last.Spawns)
	fmt.Printf("  ├─ runtime   %8.3f ms  (bodies + COW: %d faults, %d pages copied)\n", ms(last.Runtime), last.Faults, last.FaultPages)
	fmt.Printf("  ├─ selection %8.3f ms  (sibling elimination + commit)\n", ms(last.Selection))
	fmt.Printf("  └─ sched     %8.3f ms  (queueing between waves)\n", ms(last.Sched))

	fmt.Printf("\nperformance improvement factor PI = τ(C_mean) / (τ(C_best) + τ(overhead)):\n")
	fmt.Printf("  τ(C_mean) predicted %8.3f ms   τ(C_best) predicted %8.3f ms  (serve EWMA history)\n",
		ms(last.PredictedMean), ms(last.PredictedBest))
	fmt.Printf("  PI predicted %6.2f   PI measured %6.2f  (measured = τ(C_mean) / wall)\n",
		last.PIPredicted, last.PIMeasured)

	raw, err := last.ChromeTrace()
	if err != nil {
		log.Fatal(err)
	}
	out := "flightrecorder.trace.json"
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s — load it in Perfetto (ui.perfetto.dev) or chrome://tracing\n", out)
}
