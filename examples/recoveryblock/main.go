// Recoveryblock: distributed execution of recovery blocks (§5.1).
// Three independently-written versions of a computation — the primary
// carrying an injected logic fault — run concurrently against full
// copies of the state; the acceptance test rejects the faulty result
// and the fastest acceptable version commits, without the sequential
// rollback-and-retry.
//
// Run with: go run ./examples/recoveryblock
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"altrun"
	"altrun/internal/recovery"
	"altrun/internal/workload"
)

func main() {
	xs := workload.RandomList(800, rand.New(rand.NewSource(3)))
	block := &recovery.Block{
		Name: "payments-ledger-sort",
		Alternates: []recovery.Alternate{
			// The primary is the fastest version — and it is buggy.
			recovery.SortVersion("primary (buggy)", workload.InsertionSort, 500*time.Nanosecond, true),
			recovery.SortVersion("secondary", workload.Heapsort, time.Microsecond, false),
			recovery.SortVersion("tertiary", workload.NaiveQuicksort, 2*time.Microsecond, false),
		},
		AcceptanceTest: recovery.SortedAcceptanceTest(recovery.Sum(xs)),
	}

	rt := altrun.NewSim(altrun.SimConfig{Profile: altrun.ProfileSharedMemory(4)})
	rt.GoRoot("main", recovery.ArraySpaceSize(len(xs)), func(w *altrun.World) {
		if err := recovery.WriteIntArray(w, xs); err != nil {
			log.Fatal(err)
		}

		// Sequential: classic recovery block with rollback.
		seqStart := rt.Now()
		idx, err := block.RunSequential(w)
		if err != nil {
			log.Fatal(err)
		}
		seqElapsed := rt.Now().Sub(seqStart)
		fmt.Printf("sequential: tried primary, acceptance test FAILED, rolled back,\n")
		fmt.Printf("            accepted %q in %v (simulated)\n\n",
			block.Alternates[idx].Name, seqElapsed)

		// Reset input, then concurrent: all versions race; the buggy
		// one loses at its guard; the fastest acceptable one wins.
		if err := recovery.WriteIntArray(w, xs); err != nil {
			log.Fatal(err)
		}
		conStart := rt.Now()
		res, err := block.RunConcurrent(w, recovery.DefaultConcurrentOptions(0))
		if err != nil {
			log.Fatal(err)
		}
		conElapsed := rt.Now().Sub(conStart)
		fmt.Printf("concurrent: %d versions raced on full state copies (§5.1.2),\n", len(block.Alternates))
		fmt.Printf("            accepted %q in %v, %d rejected\n\n",
			res.Name, conElapsed, res.Failures)
		fmt.Printf("speedup: %.2fx — \"fastest-first behaviour in an attempt to find\n", float64(seqElapsed)/float64(conElapsed))
		fmt.Println("a rapid failure-free path through the computation\" (§7)")

		got, err := recovery.ReadIntArray(w)
		if err != nil || !workload.IsSorted(got) {
			log.Fatal("committed state invalid")
		}
	})
	if err := rt.Run(); err != nil {
		log.Fatal(err)
	}
}
