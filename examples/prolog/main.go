// Prolog: OR-parallelism (§5.2). A route-planning predicate has two
// clauses — an expensive search and a cheap lookup. Sequential SLD
// resolution explores clauses in textual order and pays for the slow
// one; OR-parallel execution races the clauses as mutually exclusive
// alternatives and commits the fast branch, eliminating the slow one
// mid-search.
//
// Run with: go run ./examples/prolog
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"altrun"
	"altrun/internal/prolog"
)

const programTemplate = `
%% slow path: a deep recursive search
burn(zero).
burn(s(N)) :- burn(N).

%% route/1 has two clauses: the expensive one first.
route(via_mountains) :- burn(DEPTH).
route(via_highway).
`

func main() {
	// Build the program with a 3000-deep burn term.
	depth := 3000
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("s(")
	}
	b.WriteString("zero")
	b.WriteString(strings.Repeat(")", depth))
	src := strings.Replace(programTemplate, "DEPTH", b.String(), 1)

	db := prolog.NewDB()
	if err := db.Load(src); err != nil {
		log.Fatal(err)
	}
	goals, qvars, err := prolog.ParseQuery("route(R)")
	if err != nil {
		log.Fatal(err)
	}
	const stepCost = 50 * time.Microsecond

	// Sequential baseline.
	seq := &prolog.Solver{DB: db}
	seqSol, found, err := seq.SolveFirst(goals, qvars)
	if err != nil || !found {
		log.Fatalf("sequential: found=%v err=%v", found, err)
	}
	seqTime := time.Duration(seq.Steps()) * stepCost
	fmt.Printf("sequential SLD:  R=%s after %d inferences (≈%v at %v/inference)\n",
		seqSol["R"], seq.Steps(), seqTime, stepCost)

	// OR-parallel over the speculative runtime.
	rt := altrun.NewSim(altrun.SimConfig{Profile: altrun.ProfileSharedMemory(4)})
	o := &prolog.OrSolver{DB: db, Cfg: prolog.OrConfig{StepCost: stepCost, ChunkSize: 16}}
	var (
		parSol  prolog.Solution
		parTime time.Duration
	)
	rt.GoRoot("query", 1<<16, func(w *altrun.World) {
		start := rt.Now()
		sol, err := o.SolveFirst(w, goals, qvars)
		if err != nil {
			log.Fatal(err)
		}
		parSol = sol
		parTime = rt.Now().Sub(start)
	})
	if err := rt.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OR-parallel:     R=%s after %d inferences across all branches (%v simulated)\n",
		parSol["R"], o.Steps(), parTime)
	fmt.Printf("\nspeedup: %.0fx — the slow clause was eliminated mid-search;\n",
		float64(seqTime)/float64(parTime))
	fmt.Println("bindings were branch-private, so no merging was needed (§5.2).")
}
