// Quickstart: race two alternative methods of computing a result in
// private copy-on-write worlds; the fastest successful one commits and
// its state is transparently absorbed into the parent.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"altrun"
)

func main() {
	rt, err := altrun.New(altrun.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// The root world is the program's non-speculative state: a 1 MB
	// paged address space.
	root, err := rt.NewRootWorld("main", 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	if err := root.WriteAt([]byte("initial state"), 0); err != nil {
		log.Fatal(err)
	}

	// Two mutually exclusive alternatives. Each runs against a private
	// COW fork of the root's space: they can read everything the root
	// wrote, and their own writes stay invisible unless they win.
	res, err := root.RunAlt(altrun.Options{Timeout: 5 * time.Second},
		altrun.Alt{
			Name: "thorough",
			Body: func(w *altrun.World) error {
				w.Sleep(300 * time.Millisecond) // slow, careful method
				return w.WriteAt([]byte("thorough answer"), 0)
			},
		},
		altrun.Alt{
			Name: "heuristic",
			Body: func(w *altrun.World) error {
				w.Sleep(20 * time.Millisecond) // fast guess
				return w.WriteAt([]byte("heuristic answer"), 0)
			},
			// The guard is the ENSURE clause: the heuristic result is
			// only acceptable if it passes validation.
			Guard: func(w *altrun.World) (bool, error) {
				buf := make([]byte, 16)
				if err := w.ReadAt(buf, 0); err != nil {
					return false, err
				}
				return string(buf[:9]) == "heuristic", nil
			},
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	buf := make([]byte, 16)
	if err := root.ReadAt(buf, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("winner:  %s (alternative #%d)\n", res.Name, res.Index+1)
	fmt.Printf("elapsed: %v\n", res.Elapsed.Round(time.Millisecond))
	fmt.Printf("state:   %q\n", buf)
	fmt.Println("\nThe loser's writes were discarded with its world; the parent")
	fmt.Println("saw exactly one alternative happen — as if chosen sequentially.")

	rt.Wait()
}
