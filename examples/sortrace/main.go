// Sortrace: the paper's §4.2 example. Three sorting algorithms with
// incomparable performance profiles — naive quicksort (fast on random
// input, quadratic on sorted input), heapsort (steady), insertion sort
// (linear on nearly-sorted input) — race on inputs whose shape the
// caller cannot predict. The fastest correct sort wins each block.
//
// Run with: go run ./examples/sortrace
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"altrun"
	"altrun/internal/recovery"
	"altrun/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	inputs := []struct {
		name string
		xs   []int
	}{
		{"random", workload.RandomList(20000, rng)},
		{"already-sorted", workload.SortedList(20000)},
		{"reversed", workload.ReversedList(20000)},
		{"nearly-sorted", workload.NearlySorted(20000, 12, rng)},
	}

	fmt.Println("racing naive-quicksort vs heapsort vs insertion-sort (real goroutines):")
	fmt.Println()
	for _, input := range inputs {
		winner, elapsed, err := race(input.xs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s -> %-12s in %8v\n", input.name, winner, elapsed.Round(10*time.Microsecond))
	}
	fmt.Println("\nNo single algorithm wins every row; fastest-first selection does.")
}

// race runs one alternative block in real mode over the shared array
// state (stored in the world's paged space, so sibling sorts never see
// each other's writes).
func race(xs []int) (string, time.Duration, error) {
	rt, err := altrun.New(altrun.Config{})
	if err != nil {
		return "", 0, err
	}
	root, err := rt.NewRootWorld("main", recovery.ArraySpaceSize(len(xs)))
	if err != nil {
		return "", 0, err
	}
	if err := recovery.WriteIntArray(root, xs); err != nil {
		return "", 0, err
	}

	mkAlt := func(name string, sorter func([]int) int64) altrun.Alt {
		return altrun.Alt{
			Name: name,
			Body: func(w *altrun.World) error {
				arr, err := recovery.ReadIntArray(w)
				if err != nil {
					return err
				}
				sorter(arr) // real CPU work
				if w.Cancelled() {
					return altrun.ErrEliminated
				}
				return recovery.WriteIntArray(w, arr)
			},
		}
	}

	start := time.Now()
	res, err := root.RunAlt(altrun.Options{},
		mkAlt("quicksort", workload.NaiveQuicksort),
		mkAlt("heapsort", workload.Heapsort),
		mkAlt("insertion", workload.InsertionSort),
	)
	if err != nil {
		return "", 0, err
	}
	elapsed := time.Since(start)

	sorted, err := recovery.ReadIntArray(root)
	if err != nil {
		return "", 0, err
	}
	if !workload.IsSorted(sorted) {
		return "", 0, fmt.Errorf("committed result is not sorted")
	}
	rt.Wait()
	return res.Name, elapsed, nil
}
