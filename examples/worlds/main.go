// Worlds: the paper's multiple-worlds message layer (§3.4.2) in
// action. Two speculative alternatives both message a shared inventory
// server before either has won. Each first contact forces the server
// to split into an assume-copy (the message happened) and a deny-copy
// (it didn't). When the race resolves, predicate resolution eliminates
// every copy whose assumptions turned out false — the surviving
// timeline reflects exactly the winner's order, as if it had been the
// only one.
//
// Run with: go run ./examples/worlds
package main

import (
	"fmt"
	"log"
	"time"

	"altrun"
	"altrun/internal/msg"
)

func main() {
	rt := altrun.NewSim(altrun.SimConfig{
		Profile: altrun.MachineProfile{Name: "demo", PageSize: 4096, CPUs: 0},
		Trace:   true,
	})

	// The inventory server: stock count at offset 0 of its own paged
	// state. All durable state lives in the world's address space —
	// that is what makes the server splittable.
	inventory := rt.SpawnServer("inventory", 4096, func(w *altrun.World, m msg.Message) {
		switch m.Data {
		case "restock":
			v, err := w.ReadUint64(0)
			if err != nil {
				return
			}
			if err := w.WriteUint64(0, v+1); err != nil {
				log.Fatal(err)
			}
		case "reserve":
			v, err := w.ReadUint64(0)
			if err != nil || v == 0 {
				return
			}
			if err := w.WriteUint64(0, v-1); err != nil {
				log.Fatal(err)
			}
		case "stock?":
			v, _ := w.ReadUint64(0)
			if err := w.Send(m.Sender, v); err != nil {
				log.Fatal(err)
			}
		}
	})

	rt.GoRoot("shop", 1024, func(w *altrun.World) {
		// Seed the stock: 5 units, committed (the root is not
		// speculative, so these messages are accepted outright).
		for i := 0; i < 5; i++ {
			if err := w.Send(inventory.PID(), "restock"); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println("stock seeded: 5 units")

		// Two fulfilment strategies race; each RESERVES A UNIT while
		// still speculative. The server cannot know which strategy
		// will win — so it forks a world per possibility.
		res, err := w.RunAlt(altrun.Options{SyncElimination: true},
			altrun.Alt{Name: "same-day-courier", Body: func(cw *altrun.World) error {
				if err := cw.Send(inventory.PID(), "reserve"); err != nil {
					return err
				}
				cw.Compute(3 * time.Second) // expensive route planning
				return nil
			}},
			altrun.Alt{Name: "next-day-post", Body: func(cw *altrun.World) error {
				if err := cw.Send(inventory.PID(), "reserve"); err != nil {
					return err
				}
				cw.Compute(1 * time.Second) // cheap: wins
				return nil
			}},
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("winner: %s\n", res.Name)

		w.Sleep(time.Minute) // let resolution settle

		// Exactly one server timeline survives, with exactly ONE unit
		// reserved — both alternatives sent "reserve", but they were
		// mutually exclusive worlds.
		if err := w.Send(inventory.PID(), "stock?"); err != nil {
			log.Fatal(err)
		}
		reply, ok := w.Recv(time.Minute)
		if !ok {
			log.Fatal("no reply from surviving inventory copy")
		}
		fmt.Printf("surviving stock: %d units (5 - the winner's single reservation)\n", reply.Data)

		st := rt.MsgStats()
		fmt.Printf("\nmessage layer: %d sent, %d accepted, %d ignored (dead worlds), %d splits\n",
			st.Sent, st.Accepted, st.Ignored, st.Splits)
		fmt.Printf("server copies alive: %d (one timeline)\n", len(rt.Copies(inventory.PID())))

		for _, cw := range rt.Copies(inventory.PID()) {
			rt.Shutdown(cw)
		}
	})
	if err := rt.Run(); err != nil {
		log.Fatal(err)
	}
}
