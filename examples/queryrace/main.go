// Queryrace: the paper's motivating workload — "problems where the
// required execution time is unpredictable, such as database queries"
// (§1). Two query plans (index scan vs sequential scan) whose relative
// cost depends on a selectivity the planner cannot see are raced in the
// deterministic simulator; the block commits whichever finishes first,
// per query. The example also shows the lightweight altrun.Race helper
// for racing plain Go functions (here: redundant replica requests).
//
// Run with: go run ./examples/queryrace
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"altrun"
	"altrun/internal/workload"
)

func main() {
	simulatedPlans()
	replicaRace()
}

// simulatedPlans races the two plans over a bimodal query workload in
// virtual time and reports how often each plan wins.
func simulatedPlans() {
	fmt.Println("== racing query plans (deterministic simulator) ==")
	gen := workload.NewQueryGen(200_000, 7)
	wins := map[string]int{}
	var totalRace, totalIndexOnly time.Duration

	for i := 0; i < 12; i++ {
		q := gen.Next()
		idxCost, scanCost := workload.QueryCosts(q, time.Microsecond, time.Microsecond)

		rt := altrun.NewSim(altrun.SimConfig{Profile: altrun.ProfileSharedMemory(4)})
		var res altrun.Result
		rt.GoRoot("query", 1<<16, func(w *altrun.World) {
			r, err := w.RunAlt(altrun.Options{},
				altrun.Alt{Name: "index-scan", Body: func(cw *altrun.World) error {
					cw.Compute(idxCost)
					return cw.WriteAt([]byte("by-index"), 0)
				}},
				altrun.Alt{Name: "seq-scan", Body: func(cw *altrun.World) error {
					cw.Compute(scanCost)
					return cw.WriteAt([]byte("by-scan "), 0)
				}},
			)
			if err != nil {
				log.Fatal(err)
			}
			res = r
		})
		if err := rt.Run(); err != nil {
			log.Fatal(err)
		}
		wins[res.Name]++
		totalRace += res.Elapsed
		totalIndexOnly += idxCost
		fmt.Printf("  query %2d: selectivity %.3f -> %-10s in %v\n",
			i+1, q.Selectivity, res.Name, res.Elapsed.Round(time.Millisecond))
	}
	fmt.Printf("\n  wins: %v\n", wins)
	fmt.Printf("  racing total:        %v\n", totalRace.Round(time.Millisecond))
	fmt.Printf("  always-index total:  %v (what a static planner pays)\n\n",
		totalIndexOnly.Round(time.Millisecond))
}

// replicaRace issues the same request to three replicas with different
// latencies and takes the first reply — fastest-first without
// speculative state, via the Race helper.
func replicaRace() {
	fmt.Println("== racing replicas (real goroutines, altrun.Race) ==")
	replica := func(name string, latency time.Duration) func(ctx context.Context) (string, error) {
		return func(ctx context.Context) (string, error) {
			select {
			case <-time.After(latency):
				return "reply from " + name, nil
			case <-ctx.Done():
				return "", ctx.Err()
			}
		}
	}
	start := time.Now()
	idx, reply, err := altrun.Race(context.Background(),
		replica("replica-a (120ms)", 120*time.Millisecond),
		replica("replica-b (15ms)", 15*time.Millisecond),
		replica("replica-c (60ms)", 60*time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  winner #%d: %q after %v\n", idx+1, reply, time.Since(start).Round(time.Millisecond))
}
