// Distributed: an alternative block whose commit is a majority-
// consensus decision across simulated nodes (§3.2.1: "in applications
// where this might create a single point of failure, the
// synchronization is set up as a majority consensus decision"). Two
// voter crashes out of five leave the quorum intact; the block still
// commits exactly one alternative. Crash a majority and the block
// fails safely by timeout instead of double-committing.
//
// Run with: go run ./examples/distributed
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"altrun"
	"altrun/internal/cluster"
	"altrun/internal/consensus"
	"altrun/internal/sim"
)

func main() {
	fmt.Println("5-node majority-consensus commit, 2 voters crashed (quorum holds):")
	if err := runBlock(2); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("same block with 3 of 5 voters crashed (no quorum):")
	if err := runBlock(3); err != nil {
		log.Fatal(err)
	}
}

func runBlock(crashes int) error {
	rt := altrun.NewSim(altrun.SimConfig{
		Profile: altrun.MachineProfile{Name: "lab", PageSize: 4096, CPUs: 0},
	})
	c := cluster.New(rt.Engine(), 1)
	var nodes []*cluster.Node
	for i := 0; i < 5; i++ {
		nodes = append(nodes, c.AddNode(sim.ProfileHP9000()))
	}
	group := consensus.NewGroup("demo", c.Endpoints(), consensus.Config{
		ReplyTimeout: 100 * time.Millisecond,
		MaxAttempts:  3,
	})

	// Adapt the quorum to the block's commit arbiter: each finishing
	// alternative runs the vote protocol on its own simulated process.
	claim := func(w *altrun.World) bool {
		p := w.SimProc()
		if p == nil {
			return false
		}
		return group.Claim(p, nodes[0], w.PID()).Won
	}

	var blockErr error
	rt.GoRoot("main", 1<<16, func(w *altrun.World) {
		for i := 0; i < crashes; i++ {
			group.CrashVoter(i)
		}
		w.Sleep(time.Millisecond)

		start := rt.Now()
		res, err := w.RunAlt(altrun.Options{Claim: claim, Timeout: 5 * time.Second},
			altrun.Alt{Name: "replica-east", Body: func(cw *altrun.World) error {
				cw.Compute(900 * time.Millisecond)
				return cw.WriteAt([]byte("east"), 0)
			}},
			altrun.Alt{Name: "replica-west", Body: func(cw *altrun.World) error {
				cw.Compute(400 * time.Millisecond)
				return cw.WriteAt([]byte("west"), 0)
			}},
		)
		elapsed := rt.Now().Sub(start)
		switch {
		case err == nil:
			buf := make([]byte, 4)
			if rerr := w.ReadAt(buf, 0); rerr != nil {
				blockErr = rerr
				return
			}
			fmt.Printf("  committed %q (state %q) in %v; quorum granted once\n",
				res.Name, buf, elapsed)
		case errors.Is(err, altrun.ErrTimeout):
			fmt.Printf("  block FAILED safely after %v: no quorum, nothing committed\n", elapsed)
		default:
			blockErr = err
		}
		group.Shutdown()
	})
	if err := rt.Run(); err != nil {
		return err
	}
	return blockErr
}
