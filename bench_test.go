package altrun_test

// One benchmark per paper artifact (DESIGN.md §5, E1-E14), plus
// substrate micro-benchmarks. The experiments run in the deterministic
// simulator, so the *simulated* quantities (latency, PI, speedup) are
// identical on every machine; they are surfaced as custom metrics, and
// ns/op measures only harness cost. Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// or print the paper-style tables with: go run ./cmd/altbench

import (
	"context"
	"testing"

	"altrun"
	"altrun/internal/experiments"
	"altrun/internal/page"
	"altrun/internal/prolog"
	"altrun/internal/workload"
)

func BenchmarkE1PITable(b *testing.B) {
	var pi2 float64
	for i := 0; i < b.N; i++ {
		res := experiments.E1()
		pi2 = res.Rows[1].PI
	}
	b.ReportMetric(pi2, "row2-PI")
}

func BenchmarkE2MeasuredPI(b *testing.B) {
	var pi2 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E2()
		if err != nil {
			b.Fatal(err)
		}
		pi2 = res.Rows[1].MeasuredPI
	}
	b.ReportMetric(pi2, "row2-PI")
}

func BenchmarkE3ForkLatency(b *testing.B) {
	var b2ms, hpms float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E3()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.SizeKB == 320 {
				if row.Profile == "AT&T-3B2/310" {
					b2ms = float64(row.Fork.Microseconds()) / 1000
				} else {
					hpms = float64(row.Fork.Microseconds()) / 1000
				}
			}
		}
	}
	b.ReportMetric(b2ms, "3B2-fork-320KB-ms")
	b.ReportMetric(hpms, "HP-fork-320KB-ms")
}

func BenchmarkE4PageCopy(b *testing.B) {
	var rate3b2, rateHP float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E4()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Fraction == 1.0 {
				if row.Profile == "AT&T-3B2/310" {
					rate3b2 = row.RatePerSec
				} else {
					rateHP = row.RatePerSec
				}
			}
		}
	}
	b.ReportMetric(rate3b2, "3B2-pages/s")
	b.ReportMetric(rateHP, "HP-pages/s")
}

func BenchmarkE5RemoteFork(b *testing.B) {
	var totalMS float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E5()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.SizeKB == 70 {
				totalMS = float64(row.Total.Milliseconds())
			}
		}
	}
	b.ReportMetric(totalMS, "rfork-70KB-ms")
}

func BenchmarkE6Semantics(b *testing.B) {
	var elim float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E6()
		if err != nil {
			b.Fatal(err)
		}
		elim = float64(res.Eliminations)
	}
	b.ReportMetric(elim, "eliminations")
}

func BenchmarkE7RecoveryBlock(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E7()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Scenario == "slow-primary(sorted-input)" {
				speedup = row.Speedup
			}
		}
	}
	b.ReportMetric(speedup, "slow-primary-speedup-x")
}

func BenchmarkE8PrologOR(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E8()
		if err != nil {
			b.Fatal(err)
		}
		speedup = res.Rows[len(res.Rows)-1].Speedup
	}
	b.ReportMetric(speedup, "deepest-skew-speedup-x")
}

func BenchmarkE9Elimination(b *testing.B) {
	var savedMS float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E9()
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		savedMS = float64((last.Sync - last.Async).Milliseconds())
	}
	b.ReportMetric(savedMS, "async-saves-ms-at-N16")
}

func BenchmarkE10Consensus(b *testing.B) {
	var latMS float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E10()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Nodes == 5 && row.Crashes == 0 {
				latMS = float64(row.Latency.Microseconds()) / 1000
			}
		}
	}
	b.ReportMetric(latMS, "5-node-commit-ms")
}

func BenchmarkE11WastedWork(b *testing.B) {
	var constFactor, expFactor float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E11()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.N == 8 {
				switch row.Workload[:4] {
				case "cons":
					constFactor = row.WasteRatio
				case "expo":
					expFactor = row.WasteRatio
				}
			}
		}
	}
	b.ReportMetric(constFactor, "const-N8-cpu-factor")
	b.ReportMetric(expFactor, "exp-N8-cpu-factor")
}

func BenchmarkE12Schemes(b *testing.B) {
	var cWins float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E12()
		if err != nil {
			b.Fatal(err)
		}
		wins := 0
		for _, row := range res.Rows {
			if row.CWins {
				wins++
			}
		}
		cWins = float64(wins)
	}
	b.ReportMetric(cWins, "workloads-where-C-wins")
}

func BenchmarkE13Worlds(b *testing.B) {
	var splits float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E13()
		if err != nil {
			b.Fatal(err)
		}
		splits = float64(res.WorldSplits)
	}
	b.ReportMetric(splits, "world-splits")
}

func BenchmarkE14Crossover(b *testing.B) {
	var crossSec float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E14()
		if err != nil {
			b.Fatal(err)
		}
		crossSec = res.AnalyticCrossover.Seconds()
	}
	b.ReportMetric(crossSec, "crossover-s")
}

func BenchmarkE15SpawnMode(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E15()
		if err != nil {
			b.Fatal(err)
		}
		penalty = res.Rows[0].Penalty
	}
	b.ReportMetric(penalty, "fullcopy-penalty-at-1pct")
}

func BenchmarkE16GuardPlacement(b *testing.B) {
	var deltaMS float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E16()
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		deltaMS = float64(last.RecheckDelta.Milliseconds())
	}
	b.ReportMetric(deltaMS, "recheck-adds-ms-at-1s-guard")
}

func BenchmarkE17VirtualConcurrency(b *testing.B) {
	var uniprocPI float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E17()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.CPUs == 1 {
				uniprocPI = row.MeasuredPI
			}
		}
	}
	b.ReportMetric(uniprocPI, "uniprocessor-PI")
}

// ---------------------------------------------------------------------
// Substrate micro-benchmarks (real wall time).
// ---------------------------------------------------------------------

// BenchmarkCOWFork measures the page-map duplication cost of forking a
// 1 MB resident space — the real-mode analogue of E3.
func BenchmarkCOWFork(b *testing.B) {
	rt, err := altrun.New(altrun.Config{})
	if err != nil {
		b.Fatal(err)
	}
	root, err := rt.NewRootWorld("bench", 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	if err := root.WriteAt(buf, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := root.RunAlt(altrun.Options{SyncElimination: true},
			altrun.Alt{Name: "noop", Body: func(w *altrun.World) error { return nil }},
		); err != nil {
			b.Fatal(err)
		}
	}
	rt.Wait()
}

// BenchmarkCOWWriteFault measures one COW page copy (real time).
func BenchmarkCOWWriteFault(b *testing.B) {
	store := page.NewStore(4096)
	parent := store.NewTable()
	if _, err := parent.Write(0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child, err := parent.Clone()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := child.Write(0); err != nil {
			b.Fatal(err)
		}
		child.Release()
	}
}

// BenchmarkRealBlock measures end-to-end real-mode block overhead with
// trivial alternatives.
func BenchmarkRealBlock(b *testing.B) {
	rt, err := altrun.New(altrun.Config{})
	if err != nil {
		b.Fatal(err)
	}
	root, err := rt.NewRootWorld("bench", 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	alts := []altrun.Alt{
		{Name: "a", Body: func(w *altrun.World) error { return w.WriteUint64(0, 1) }},
		{Name: "b", Body: func(w *altrun.World) error { return w.WriteUint64(0, 2) }},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := root.RunAlt(altrun.Options{SyncElimination: true}, alts...); err != nil {
			b.Fatal(err)
		}
	}
	rt.Wait()
}

// BenchmarkRace measures the lightweight Race helper.
func BenchmarkRace(b *testing.B) {
	fn := func(ctx context.Context) (int, error) { return 1, nil }
	for i := 0; i < b.N; i++ {
		if _, _, err := altrun.Race(context.Background(), fn, fn, fn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnify measures unification on a medium list term.
func BenchmarkUnify(b *testing.B) {
	elems := make([]prolog.Term, 64)
	for i := range elems {
		elems[i] = prolog.Int(int64(i))
	}
	ground := prolog.MkList(elems...)
	db := prolog.NewDB()
	if err := db.Load("same(X, X)."); err != nil {
		b.Fatal(err)
	}
	s := &prolog.Solver{DB: db}
	goal := &prolog.Compound{Functor: "same", Args: []prolog.Term{ground, ground}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found, err := s.Solve([]prolog.Term{goal}, func(prolog.Bindings) bool { return true })
		if err != nil || !found {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialSLD measures the baseline engine on nrev/30.
func BenchmarkSequentialSLD(b *testing.B) {
	db := prolog.NewDB()
	err := db.Load(`
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
`)
	if err != nil {
		b.Fatal(err)
	}
	elems := make([]prolog.Term, 30)
	for i := range elems {
		elems[i] = prolog.Int(int64(i))
	}
	goal := &prolog.Compound{Functor: "nrev", Args: []prolog.Term{
		prolog.MkList(elems...), prolog.Var{Name: "R", ID: 1},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &prolog.Solver{DB: db}
		found, err := s.Solve([]prolog.Term{goal}, func(prolog.Bindings) bool { return true })
		if err != nil || !found {
			b.Fatal(err)
		}
	}
}

// BenchmarkSorters measures the three §4.2 algorithms on the input
// that exposes the dispersion racing exploits: already-sorted data.
func BenchmarkSorters(b *testing.B) {
	const n = 2000
	b.Run("quicksort-sorted-pathological", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			workload.NaiveQuicksort(workload.SortedList(n))
		}
	})
	b.Run("heapsort-sorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			workload.Heapsort(workload.SortedList(n))
		}
	})
	b.Run("insertion-sorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			workload.InsertionSort(workload.SortedList(n))
		}
	})
}
