package spec

import (
	"strings"
	"testing"
)

// TestBoundedConfigsSafe exhaustively checks the two CI-bound configs:
// every reachable state satisfies all three safety invariants, and
// every leaf state (no enabled action) is fully resolved — the
// executable counterpart of the BlockTerminates liveness property.
func TestBoundedConfigsSafe(t *testing.T) {
	for _, cfg := range []Config{
		{NAlts: 3, MsgsPerAlt: 2},
		{NAlts: 4, MsgsPerAlt: 1},
	} {
		res := cfg.Explore()
		t.Logf("config %d alts × %d msgs: %d states, %d transitions, %d terminal",
			cfg.NAlts, cfg.MsgsPerAlt, res.States, res.Transitions, res.Deadlocks)
		if res.Violation != nil {
			t.Fatalf("invariant violated: %v\ntrace: %s",
				res.Violation, strings.Join(res.Trace, " -> "))
		}
		if res.BadDeadlock != nil {
			t.Fatalf("terminal state not fully resolved: %+v", *res.BadDeadlock)
		}
		if res.Deadlocks == 0 {
			t.Fatal("no terminal states found — the model never finishes a block")
		}
	}
}

// TestMutationHasTeeth proves the spec can actually catch the bug class
// it exists for: with SkipElim (the elimination of contradicted copies
// dropped on the not-completed branch), the checker must produce a
// NoObservableLosers counterexample — a flushed copy that assumed a
// loser would win.
func TestMutationHasTeeth(t *testing.T) {
	cfg := Config{NAlts: 3, MsgsPerAlt: 1, SkipElim: true}
	res := cfg.Explore()
	if res.Violation == nil {
		t.Fatal("SkipElim mutation explored clean — the invariants have no teeth")
	}
	if !strings.Contains(res.Violation.Error(), "NoObservableLosers") {
		t.Fatalf("expected a NoObservableLosers counterexample, got: %v", res.Violation)
	}
	if len(res.Trace) == 0 {
		t.Fatal("violation produced no counterexample trace")
	}
	t.Logf("counterexample (%d steps): %s", len(res.Trace), strings.Join(res.Trace, " -> "))
}

// TestClaimIsExclusive spot-checks the arbiter action directly: from a
// state with two passed alternatives, the two Claim transitions lead to
// different winners, and in neither successor is a second Claim enabled.
func TestClaimIsExclusive(t *testing.T) {
	cfg := Config{NAlts: 2, MsgsPerAlt: 0}
	s := cfg.Init()
	s.Alt[0], s.Alt[1] = StPassed, StPassed
	var claims []Trans
	for _, tr := range cfg.Successors(s) {
		if strings.HasPrefix(tr.Label, "Claim") {
			claims = append(claims, tr)
		}
	}
	if len(claims) != 2 {
		t.Fatalf("expected 2 enabled Claims, got %d", len(claims))
	}
	for _, tr := range claims {
		for _, tr2 := range cfg.Successors(tr.To) {
			if strings.HasPrefix(tr2.Label, "Claim") {
				t.Fatalf("second Claim enabled after %s", tr.Label)
			}
		}
	}
}
