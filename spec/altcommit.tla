---------------------------- MODULE altcommit ----------------------------
(***************************************************************************)
(* A model of the commit/elimination protocol of "Transparent Concurrent  *)
(* Execution of Mutually Exclusive Alternatives" (ICDCS 1989), as          *)
(* implemented by internal/core (see DESIGN §10 for the action → Go        *)
(* function map).                                                          *)
(*                                                                         *)
(* One alternative block runs NAlts alternatives.  Each alternative may    *)
(* send up to MsgsPerAlt messages to an external server process while it   *)
(* runs; every message carries the sending predicate "this alternative     *)
(* completes" (§3.4.1).  Delivery follows the multiple-worlds rule of      *)
(* §3.4.2: a server copy that already assumes the sender completes         *)
(* accepts, one that assumes it does not ignores, and one that has no      *)
(* opinion splits into an assume-copy and a deny-copy.  When an            *)
(* alternative's fate becomes final it is resolved: copies whose           *)
(* assumptions the fate contradicts are eliminated (§3.2.1), and a copy    *)
(* whose every assumption has resolved in its favor may flush its          *)
(* deferred observable output (§3.4.3).                                    *)
(*                                                                         *)
(* SkipElim is the deliberate mutation the CI model-check job uses to      *)
(* prove the spec has teeth: when TRUE, resolving a non-completed          *)
(* alternative skips the elimination of the copies that assumed it would   *)
(* complete — the contradicted copy survives, its assumptions all          *)
(* "resolve", it flushes, and NoObservableLosers produces a                *)
(* counterexample.                                                         *)
(***************************************************************************)
EXTENDS Naturals, FiniteSets

CONSTANTS
  NAlts,      \* number of alternatives in the block
  MsgsPerAlt, \* messages each alternative may send while running
  SkipElim    \* mutation switch: drop the not-completed elimination branch

Alts == 1..NAlts

NoneAlt == 0

(* A server copy: asm = alternatives it assumes will complete, den =
   alternatives it assumes will not.  The root copy assumes nothing. *)
Copy(a, d) == [asm |-> a, den |-> d]

VARIABLES
  alt,      \* [Alts -> status]: the alternative state machine
  claimed,  \* the commit arbiter's 0-1 semaphore
  winner,   \* the alternative that won the claim, or NoneAlt
  sent,     \* [Alts -> 0..MsgsPerAlt]: messages each alternative sent
  copies,   \* live server copies (set of Copy records)
  flushed,  \* copies that have flushed observable output (history: grows)
  resolved, \* alternatives whose final fate has been propagated
  elims,    \* count of copies eliminated by contradiction
  created   \* count of copies ever created by splits (+ the root)

vars == <<alt, claimed, winner, sent, copies, flushed, resolved, elims, created>>

TypeOK ==
  /\ alt \in [Alts -> {"running", "passed", "failed", "won", "toolate", "eliminated"}]
  /\ claimed \in BOOLEAN
  /\ winner \in Alts \cup {NoneAlt}
  /\ sent \in [Alts -> 0..MsgsPerAlt]
  /\ \A c \in copies \cup flushed :
        c.asm \subseteq Alts /\ c.den \subseteq Alts /\ c.asm \cap c.den = {}
  /\ resolved \subseteq Alts
  /\ elims \in Nat /\ created \in Nat

Init ==
  /\ alt = [a \in Alts |-> "running"]
  /\ claimed = FALSE
  /\ winner = NoneAlt
  /\ sent = [a \in Alts |-> 0]
  /\ copies = {Copy({}, {})}
  /\ flushed = {}
  /\ resolved = {}
  /\ elims = 0
  /\ created = 1

---------------------------------------------------------------------------
(* The alternative state machine (alt.go: runAlternative + alt_wait).     *)

(* The body ran and the guard held: the alternative will race for the
   claim (runAlternative "guard passed" → claim attempt). *)
Pass(a) ==
  /\ alt[a] = "running"
  /\ alt' = [alt EXCEPT ![a] = "passed"]
  /\ UNCHANGED <<claimed, winner, sent, copies, flushed, resolved, elims, created>>

(* The body aborted or the guard failed (runAlternative → OutcomeFailed). *)
Fail(a) ==
  /\ alt[a] = "running"
  /\ alt' = [alt EXCEPT ![a] = "failed"]
  /\ UNCHANGED <<claimed, winner, sent, copies, flushed, resolved, elims, created>>

(* The 0-1 semaphore claim (arbiter.Local / the distributed quorum claim):
   first passed alternative to claim wins the block. *)
Claim(a) ==
  /\ alt[a] = "passed"
  /\ ~claimed
  /\ claimed' = TRUE
  /\ winner' = a
  /\ alt' = [alt EXCEPT ![a] = "won"]
  /\ UNCHANGED <<sent, copies, flushed, resolved, elims, created>>

(* A passed alternative that lost the claim race (OutcomeTooLate). *)
TooLate(a) ==
  /\ alt[a] = "passed"
  /\ claimed
  /\ alt' = [alt EXCEPT ![a] = "toolate"]
  /\ UNCHANGED <<claimed, winner, sent, copies, flushed, resolved, elims, created>>

(* The winner's commit eliminates still-running siblings (§3.2.1;
   alt.go commit → propagate{eliminate}). *)
EliminateSib(a) ==
  /\ claimed
  /\ a # winner
  /\ alt[a] = "running"
  /\ alt' = [alt EXCEPT ![a] = "eliminated"]
  /\ UNCHANGED <<claimed, winner, sent, copies, flushed, resolved, elims, created>>

---------------------------------------------------------------------------
(* The message layer (§3.4; msg.Router.Send + World.Split).              *)

(* Delivering a message from alternative a to copy c: accept if c already
   assumes a completes, ignore if it assumes a does not, split otherwise. *)
DeliverTo(c, a) ==
  IF a \in c.asm \/ a \in c.den
    THEN {c}
    ELSE {Copy(c.asm \cup {a}, c.den), Copy(c.asm, c.den \cup {a})}

SplitsOf(a) == {c \in copies : a \notin c.asm /\ a \notin c.den}

(* A running alternative sends one message to the server under the
   predicate "I complete" (Runtime.sendFrom with the sender's snapshot). *)
Send(a) ==
  /\ alt[a] = "running"
  /\ sent[a] < MsgsPerAlt
  /\ sent' = [sent EXCEPT ![a] = @ + 1]
  /\ copies' = UNION {DeliverTo(c, a) : c \in copies}
  /\ created' = created + Cardinality(SplitsOf(a))
  /\ UNCHANGED <<alt, claimed, winner, flushed, resolved, elims>>

---------------------------------------------------------------------------
(* Resolution and observation (Runtime.propagate + World.flushDeferred). *)

Terminal(a) == alt[a] \in {"failed", "won", "toolate", "eliminated"}
Completed(a) == alt[a] = "won"

Contradicted(c, a) ==
  IF Completed(a) THEN a \in c.den ELSE a \in c.asm

(* Propagate alternative a's final fate: subscribers whose assumptions it
   contradicts are eliminated — unless the SkipElim mutation drops the
   not-completed branch (the "skip elimination on one branch" bug the CI
   job proves the invariants catch). *)
Resolve(a) ==
  /\ Terminal(a)
  /\ a \notin resolved
  /\ resolved' = resolved \cup {a}
  /\ LET victims == IF SkipElim /\ ~Completed(a)
                      THEN {}
                      ELSE {c \in copies : Contradicted(c, a)}
     IN /\ copies' = copies \ victims
        /\ elims' = elims + Cardinality(victims)
  /\ UNCHANGED <<alt, claimed, winner, sent, flushed, created>>

(* A copy whose every assumption has been resolved flushes its deferred
   observable output (§3.4.3: output is deferred until the predicate set
   fully resolves).  flushed is history — output cannot be unprinted. *)
Flush(c) ==
  /\ c \in copies
  /\ c \notin flushed
  /\ (c.asm \cup c.den) \subseteq resolved
  /\ flushed' = flushed \cup {c}
  /\ UNCHANGED <<alt, claimed, winner, sent, copies, resolved, elims, created>>

(* Self-loop once every alternative has resolved, so TLC's deadlock check
   stays meaningful for every earlier state. *)
Done ==
  /\ resolved = Alts
  /\ UNCHANGED vars

Next ==
  \/ \E a \in Alts :
        Pass(a) \/ Fail(a) \/ Claim(a) \/ TooLate(a)
        \/ EliminateSib(a) \/ Send(a) \/ Resolve(a)
  \/ \E c \in copies : Flush(c)
  \/ Done

Spec == Init /\ [][Next]_vars

(* Weak fairness per alternative: it eventually leaves "running"
   (pass or fail), a passed alternative eventually claims or learns it
   is too late, and a final fate is eventually propagated.  This is what
   the Go runtime's scheduler + propagate cascade guarantee. *)
FairSpec ==
  Spec
  /\ \A a \in Alts : WF_vars(Pass(a) \/ Fail(a))
  /\ \A a \in Alts : WF_vars(Claim(a) \/ TooLate(a))
  /\ \A a \in Alts : WF_vars(EliminateSib(a))
  /\ \A a \in Alts : WF_vars(Resolve(a))

---------------------------------------------------------------------------
(* Invariants.                                                            *)

Winners == {a \in Alts : alt[a] = "won"}

(* §3.2.1: the 0-1 semaphore admits exactly one winner per block. *)
AtMostOneCommit ==
  /\ Cardinality(Winners) <= 1
  /\ claimed <=> (winner # NoneAlt)
  /\ (winner # NoneAlt) => alt[winner] = "won"

(* §3.4.3/§4.3: observable output only ever comes from copies whose
   assumptions hold — an observer never sees a losing world's effects.
   Statuses are immutable once terminal, and a copy only flushes when
   every assumption is resolved, so checking the current statuses is
   checking the statuses at flush time. *)
NoObservableLosers ==
  \A c \in flushed :
    /\ \A a \in c.asm : alt[a] \notin {"failed", "toolate", "eliminated"}
    /\ \A a \in c.den : alt[a] # "won"

(* The contradiction cascade does bounded work: it can only eliminate
   copies that splits created, a copy decides each alternative at most
   once (so the live population is bounded by the full decision tree),
   and splits are bounded by sends × live copies. *)
ContradictionChainTermination ==
  /\ elims <= created
  /\ Cardinality(copies) <= 2 ^ NAlts
  /\ created <= 1 + NAlts * MsgsPerAlt * 2 ^ NAlts

(* Liveness under FairSpec: the block eventually commits or aborts and
   every alternative's fate is propagated. *)
BlockTerminates == <>(resolved = Alts)

===========================================================================
