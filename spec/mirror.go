// Package spec mirrors spec/altcommit.tla as an executable Go
// transition system, so the model's invariants are machine-checked by
// the ordinary test suite (`go test ./...`) on machines without a TLA+
// toolchain. CI additionally runs TLC on the .tla module itself; the
// two checkers explore the same state graph — action for action, name
// for name — and must agree. Keep this file and altcommit.tla in
// lockstep (the DESIGN §10 mapping table covers both).
package spec

import (
	"fmt"
	"math/bits"
)

// Alternative statuses, mirroring the TLA status strings.
const (
	StRunning uint8 = iota
	StPassed
	StFailed
	StWon
	StTooLate
	StEliminated
)

var statusNames = [...]string{"running", "passed", "failed", "won", "toolate", "eliminated"}

// maxAlts bounds the fixed-size state arrays; the bounded configs stay
// well under it.
const maxAlts = 6

// Config selects a bounded model instance (the TLA CONSTANTS).
type Config struct {
	NAlts      int
	MsgsPerAlt int
	// SkipElim is the deliberate mutation: resolving a non-completed
	// alternative skips eliminating the copies that assumed it would
	// complete. Must produce a NoObservableLosers violation.
	SkipElim bool
}

// CopyRec is one server copy: bitmask of alternatives it assumes will
// complete (Asm) and will not complete (Den). Alternative i is bit i.
type CopyRec struct {
	Asm, Den uint8
}

// State is one node of the model's state graph.
type State struct {
	Alt      [maxAlts]uint8 // status per alternative
	Sent     [maxAlts]uint8 // messages sent per alternative
	Claimed  bool
	Winner   int8  // -1 = none
	Resolved uint8 // bitmask of propagated alternatives
	Elims    uint16
	Created  uint16
	Copies   []CopyRec // live copies, sorted (set semantics)
	Flushed  []CopyRec // observation history, sorted — only ever grows
}

// Trans is one labelled transition (the TLA action name, parameterized).
type Trans struct {
	Label string
	To    State
}

// Init returns the initial state: all alternatives running, one root
// copy with no assumptions.
func (c Config) Init() State {
	return State{
		Winner:  -1,
		Copies:  []CopyRec{{}},
		Created: 1,
	}
}

// Key encodes s canonically for visited-set membership.
func (s State) Key(nalts int) string {
	b := make([]byte, 0, 16+4*(len(s.Copies)+len(s.Flushed)))
	b = append(b, s.Alt[:nalts]...)
	b = append(b, s.Sent[:nalts]...)
	cl := byte(0)
	if s.Claimed {
		cl = 1
	}
	b = append(b, cl, byte(s.Winner+1), s.Resolved,
		byte(s.Elims>>8), byte(s.Elims), byte(s.Created>>8), byte(s.Created))
	b = append(b, byte(len(s.Copies)))
	for _, cp := range s.Copies {
		b = append(b, cp.Asm, cp.Den)
	}
	b = append(b, byte(len(s.Flushed)))
	for _, cp := range s.Flushed {
		b = append(b, cp.Asm, cp.Den)
	}
	return string(b)
}

func (s State) clone() State {
	n := s
	n.Copies = append([]CopyRec(nil), s.Copies...)
	n.Flushed = append([]CopyRec(nil), s.Flushed...)
	return n
}

// insertCopy adds r to sorted set cs (no-op if present).
func insertCopy(cs []CopyRec, r CopyRec) []CopyRec {
	lo := 0
	for lo < len(cs) && less(cs[lo], r) {
		lo++
	}
	if lo < len(cs) && cs[lo] == r {
		return cs
	}
	cs = append(cs, CopyRec{})
	copy(cs[lo+1:], cs[lo:])
	cs[lo] = r
	return cs
}

func less(a, b CopyRec) bool {
	if a.Asm != b.Asm {
		return a.Asm < b.Asm
	}
	return a.Den < b.Den
}

func containsCopy(cs []CopyRec, r CopyRec) bool {
	for _, c := range cs {
		if c == r {
			return true
		}
	}
	return false
}

// Successors enumerates every enabled transition of s — one per TLA
// action instance (the Done self-loop is omitted: the Go checker treats
// fully-resolved leaf states as proper termination instead).
func (c Config) Successors(s State) []Trans {
	var out []Trans
	for a := 0; a < c.NAlts; a++ {
		bit := uint8(1) << a
		switch s.Alt[a] {
		case StRunning:
			// Pass(a) — runAlternative: body ran, guard held.
			n := s.clone()
			n.Alt[a] = StPassed
			out = append(out, Trans{fmt.Sprintf("Pass(%d)", a+1), n})
			// Fail(a) — runAlternative: body aborted or guard failed.
			n = s.clone()
			n.Alt[a] = StFailed
			out = append(out, Trans{fmt.Sprintf("Fail(%d)", a+1), n})
			// EliminateSib(a) — winner's commit kills running siblings.
			if s.Claimed && int(s.Winner) != a {
				n = s.clone()
				n.Alt[a] = StEliminated
				out = append(out, Trans{fmt.Sprintf("EliminateSib(%d)", a+1), n})
			}
			// Send(a) — message to the server under "a completes".
			if int(s.Sent[a]) < c.MsgsPerAlt {
				n = s.clone()
				n.Sent[a]++
				var next []CopyRec
				splits := 0
				for _, cp := range s.Copies {
					if cp.Asm&bit != 0 || cp.Den&bit != 0 {
						next = insertCopy(next, cp) // accept or ignore
						continue
					}
					splits++
					next = insertCopy(next, CopyRec{Asm: cp.Asm | bit, Den: cp.Den})
					next = insertCopy(next, CopyRec{Asm: cp.Asm, Den: cp.Den | bit})
				}
				n.Copies = next
				n.Created += uint16(splits)
				out = append(out, Trans{fmt.Sprintf("Send(%d)", a+1), n})
			}
		case StPassed:
			if !s.Claimed {
				// Claim(a) — the 0-1 semaphore: first passed wins.
				n := s.clone()
				n.Claimed = true
				n.Winner = int8(a)
				n.Alt[a] = StWon
				out = append(out, Trans{fmt.Sprintf("Claim(%d)", a+1), n})
			} else {
				// TooLate(a) — lost the claim race.
				n := s.clone()
				n.Alt[a] = StTooLate
				out = append(out, Trans{fmt.Sprintf("TooLate(%d)", a+1), n})
			}
		}
		// Resolve(a) — propagate a terminal fate to the copies.
		if terminal(s.Alt[a]) && s.Resolved&bit == 0 {
			n := s.clone()
			n.Resolved |= bit
			completed := s.Alt[a] == StWon
			if !(c.SkipElim && !completed) {
				kept := n.Copies[:0]
				for _, cp := range n.Copies {
					contradicted := false
					if completed {
						contradicted = cp.Den&bit != 0
					} else {
						contradicted = cp.Asm&bit != 0
					}
					if contradicted {
						n.Elims++
					} else {
						kept = append(kept, cp)
					}
				}
				n.Copies = kept
			}
			out = append(out, Trans{fmt.Sprintf("Resolve(%d)", a+1), n})
		}
	}
	// Flush(c) — a copy with every assumption resolved emits its
	// deferred observable output.
	for _, cp := range s.Copies {
		if (cp.Asm|cp.Den)&^s.Resolved != 0 || containsCopy(s.Flushed, cp) {
			continue
		}
		n := s.clone()
		n.Flushed = insertCopy(n.Flushed, cp)
		out = append(out, Trans{fmt.Sprintf("Flush{asm:%b den:%b}", cp.Asm, cp.Den), n})
	}
	return out
}

func terminal(st uint8) bool {
	return st == StFailed || st == StWon || st == StTooLate || st == StEliminated
}

// CheckInvariants returns a non-nil error naming the first violated
// invariant of altcommit.tla, or nil.
func (c Config) CheckInvariants(s State) error {
	allMask := uint8(1)<<c.NAlts - 1

	// TypeOK: copies are well-formed partitions of decided alternatives.
	for _, cp := range append(append([]CopyRec(nil), s.Copies...), s.Flushed...) {
		if cp.Asm&cp.Den != 0 || cp.Asm&^allMask != 0 || cp.Den&^allMask != 0 {
			return fmt.Errorf("TypeOK: malformed copy asm=%b den=%b", cp.Asm, cp.Den)
		}
	}

	// AtMostOneCommit.
	winners := 0
	for a := 0; a < c.NAlts; a++ {
		if s.Alt[a] == StWon {
			winners++
		}
	}
	if winners > 1 {
		return fmt.Errorf("AtMostOneCommit: %d winners", winners)
	}
	if s.Claimed != (s.Winner >= 0) {
		return fmt.Errorf("AtMostOneCommit: claimed=%v but winner=%d", s.Claimed, s.Winner)
	}
	if s.Winner >= 0 && s.Alt[s.Winner] != StWon {
		return fmt.Errorf("AtMostOneCommit: winner %d has status %s", s.Winner+1, statusNames[s.Alt[s.Winner]])
	}

	// NoObservableLosers.
	for _, cp := range s.Flushed {
		for a := 0; a < c.NAlts; a++ {
			bit := uint8(1) << a
			if cp.Asm&bit != 0 {
				switch s.Alt[a] {
				case StFailed, StTooLate, StEliminated:
					return fmt.Errorf("NoObservableLosers: flushed copy{asm:%b den:%b} assumed alt %d completes but it %s",
						cp.Asm, cp.Den, a+1, statusNames[s.Alt[a]])
				}
			}
			if cp.Den&bit != 0 && s.Alt[a] == StWon {
				return fmt.Errorf("NoObservableLosers: flushed copy{asm:%b den:%b} denied alt %d which won",
					cp.Asm, cp.Den, a+1)
			}
		}
	}

	// ContradictionChainTermination.
	if int(s.Elims) > int(s.Created) {
		return fmt.Errorf("ContradictionChainTermination: elims %d > created %d", s.Elims, s.Created)
	}
	if len(s.Copies) > 1<<c.NAlts {
		return fmt.Errorf("ContradictionChainTermination: %d live copies > 2^%d", len(s.Copies), c.NAlts)
	}
	if int(s.Created) > 1+c.NAlts*c.MsgsPerAlt*(1<<c.NAlts) {
		return fmt.Errorf("ContradictionChainTermination: created %d exceeds split bound", s.Created)
	}
	return nil
}

// FullyResolved reports whether every alternative's fate has been
// propagated — the Done condition of the TLA module.
func (c Config) FullyResolved(s State) bool {
	return bits.OnesCount8(s.Resolved) == c.NAlts
}

// Result summarizes an exhaustive breadth-first exploration.
type Result struct {
	States      int      // distinct states visited
	Transitions int      // transitions taken
	Violation   error    // first invariant violation, or nil
	Trace       []string // action labels from Init to the violation
	Deadlocks   int      // states with no enabled action
	BadDeadlock *State   // a deadlock that is not fully resolved, if any
}

// Explore walks the whole bounded state graph from Init, checking every
// invariant in every state. The graph is finite and acyclic (every
// action strictly increases a potential: statuses only move forward,
// sent/resolved/flushed only grow), so the walk terminates and leaf
// states are exactly the protocol's possible final outcomes; Explore
// verifies each leaf is fully resolved — the executable counterpart of
// BlockTerminates under fair scheduling.
func (c Config) Explore() Result {
	type node struct {
		state  State
		parent string // key of predecessor
		via    string // action label that produced it
	}
	init := c.Init()
	res := Result{}
	visited := map[string]node{init.Key(c.NAlts): {state: init}}
	queue := []string{init.Key(c.NAlts)}

	traceTo := func(key string) []string {
		var labels []string
		for key != "" {
			n := visited[key]
			if n.via == "" {
				break
			}
			labels = append([]string{n.via}, labels...)
			key = n.parent
		}
		return labels
	}

	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		n := visited[key]
		if err := c.CheckInvariants(n.state); err != nil {
			if res.Violation == nil {
				res.Violation = err
				res.Trace = traceTo(key)
			}
			continue
		}
		succ := c.Successors(n.state)
		if len(succ) == 0 {
			res.Deadlocks++
			if !c.FullyResolved(n.state) && res.BadDeadlock == nil {
				st := n.state.clone()
				res.BadDeadlock = &st
			}
			continue
		}
		res.Transitions += len(succ)
		for _, t := range succ {
			k := t.To.Key(c.NAlts)
			if _, ok := visited[k]; ok {
				continue
			}
			visited[k] = node{state: t.To, parent: key, via: t.Label}
			queue = append(queue, k)
		}
	}
	res.States = len(visited)
	return res
}
