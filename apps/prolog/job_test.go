package prolog

import (
	"context"
	"testing"
	"time"

	"altrun/internal/serve"
)

func TestQueryJobThroughPool(t *testing.T) {
	db := NewDB()
	if err := db.Load(Prelude); err != nil {
		t.Fatal(err)
	}
	if err := db.Load(`
		likes(alice, go).
		likes(bob, go).
		likes(bob, c).
	`); err != nil {
		t.Fatal(err)
	}

	p, err := serve.NewPool(serve.Config{Workers: 2, SpecTokens: 4, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := p.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	job, err := QueryJob(db, "likes(X, c)", OrConfig{}, 0, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := p.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := tk.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != serve.StatusDone {
		t.Fatalf("status = %v (err %v), want done", res.Status, res.Err)
	}
	sol, ok := res.Value.(Solution)
	if !ok {
		t.Fatalf("Value type %T, want Solution", res.Value)
	}
	if sol["X"] != "bob" {
		t.Fatalf("X = %q, want bob", sol["X"])
	}
}

func TestQueryJobParseError(t *testing.T) {
	if _, err := QueryJob(NewDB(), "likes(", OrConfig{}, 0, time.Second); err == nil {
		t.Fatal("malformed query should fail to build a job")
	}
}
