// Package prolog is the public surface of the repository's Prolog
// engine (the paper's §5.2 application): a small Edinburgh-subset
// interpreter with a sequential SLD solver and an OR-parallel solver
// that races clause choices through speculative worlds.
//
//	db := prolog.NewDB()
//	_ = db.Load(prolog.Prelude)
//	_ = db.Load("likes(alice, go). likes(bob, go). likes(bob, c).")
//	goals, vars, _ := prolog.ParseQuery("likes(X, go)")
//	s := &prolog.Solver{DB: db}
//	sols, _ := s.SolveAll(goals, vars, 0)
//
// For OR-parallel execution, run an OrSolver inside an altrun world;
// see examples/prolog.
package prolog

import (
	internal "altrun/internal/prolog"
)

// Term types.
type (
	// Term is a Prolog term: Atom, Int, Var, or Compound.
	Term = internal.Term
	// Atom is a constant symbol.
	Atom = internal.Atom
	// Int is an integer constant.
	Int = internal.Int
	// Var is a logic variable.
	Var = internal.Var
	// Compound is a functor applied to arguments.
	Compound = internal.Compound
	// Clause is head :- body.
	Clause = internal.Clause
	// Bindings is the substitution built by unification.
	Bindings = internal.Bindings
	// Solution maps query-variable names to rendered values.
	Solution = internal.Solution
)

// Engine types.
type (
	// DB is a clause database.
	DB = internal.DB
	// Solver is the sequential SLD engine.
	Solver = internal.Solver
	// OrSolver races clause choices through speculative worlds.
	OrSolver = internal.OrSolver
	// OrConfig tunes the OR-parallel solver.
	OrConfig = internal.OrConfig
)

// Errors.
var (
	// ErrDepthExceeded aborts runaway derivations.
	ErrDepthExceeded = internal.ErrDepthExceeded
	// ErrStopped is returned by a step hook to abandon a search.
	ErrStopped = internal.ErrStopped
	// ErrNoSolution is the OR-parallel "no." outcome.
	ErrNoSolution = internal.ErrNoSolution
)

// Prelude is the list-predicate standard library.
const Prelude = internal.Prelude

// EmptyList is the [] atom.
var EmptyList = internal.EmptyList

// NewDB returns an empty clause database.
func NewDB() *DB { return internal.NewDB() }

// ParseProgram parses a whole program (facts and rules).
func ParseProgram(src string) ([]Clause, error) { return internal.ParseProgram(src) }

// ParseQuery parses a comma-separated goal list, returning the goals
// and the query's variables in first-occurrence order.
func ParseQuery(src string) ([]Term, []Var, error) { return internal.ParseQuery(src) }

// Cons builds the list cell '.'(head, tail).
func Cons(head, tail Term) Term { return internal.Cons(head, tail) }

// MkList builds a proper list from elements.
func MkList(elems ...Term) Term { return internal.MkList(elems...) }

// Vars collects the distinct variables of t in first-occurrence order.
func Vars(t Term) []Var { return internal.Vars(t) }

// Indicator returns the functor/arity key of a callable term.
func Indicator(t Term) (string, bool) { return internal.Indicator(t) }

// MakeSolution renders the query variables' values under b.
func MakeSolution(queryVars []Var, b Bindings) Solution {
	return internal.MakeSolution(queryVars, b)
}
