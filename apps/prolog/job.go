package prolog

import (
	"fmt"
	"time"

	"altrun/internal/core"
	internal "altrun/internal/prolog"
	"altrun/internal/serve"
)

// QueryJob adapts a Prolog query into a serve.Job: the query's
// top-level OR choice point expands into one alternative per matching
// clause (OrSolver.QueryAlts), and the pool races them under its
// speculation budget — priority admission learns which clause
// historically derives a solution fastest for this query kind. The
// result value is the Solution (map of query variables to rendered
// values). spaceSize 0 uses the pool default.
func QueryJob(db *DB, query string, cfg OrConfig, spaceSize int64, deadline time.Duration) (serve.Job, error) {
	goals, vars, err := ParseQuery(query)
	if err != nil {
		return serve.Job{}, fmt.Errorf("prolog: parse %q: %w", query, err)
	}
	solver := &internal.OrSolver{DB: db, Cfg: cfg}
	return serve.Job{
		Kind:      "prolog:" + query,
		Name:      "?- " + query,
		Alts:      solver.QueryAlts(goals, vars),
		SpaceSize: spaceSize,
		Extract: func(w *core.World) (any, error) {
			return internal.ReadSolution(w)
		},
		Deadline: deadline,
	}, nil
}
