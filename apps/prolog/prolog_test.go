package prolog_test

import (
	"testing"

	"altrun/apps/prolog"
)

// The public surface must be self-sufficient for the quickstart flow.
func TestPublicSurface(t *testing.T) {
	db := prolog.NewDB()
	if err := db.Load(prolog.Prelude); err != nil {
		t.Fatal(err)
	}
	if err := db.Load("likes(alice, go). likes(bob, go). likes(bob, c)."); err != nil {
		t.Fatal(err)
	}
	goals, vars, err := prolog.ParseQuery("likes(X, go)")
	if err != nil {
		t.Fatal(err)
	}
	s := &prolog.Solver{DB: db}
	sols, err := s.SolveAll(goals, vars, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("solutions = %v", sols)
	}
	// Term construction helpers.
	l := prolog.MkList(prolog.Atom("a"), prolog.Int(1))
	if l.String() != "[a,1]" {
		t.Fatalf("MkList = %q", l.String())
	}
	if k, ok := prolog.Indicator(prolog.Atom("x")); !ok || k != "x/0" {
		t.Fatalf("Indicator = %q %v", k, ok)
	}
	if prolog.EmptyList.String() != "[]" {
		t.Fatal("EmptyList")
	}
	if vs := prolog.Vars(prolog.Cons(prolog.Var{Name: "H", ID: 1}, prolog.EmptyList)); len(vs) != 1 {
		t.Fatalf("Vars = %v", vs)
	}
}
