// Package stm adapts the contended-store STM workload
// (internal/stm) into serve jobs: one job is one transaction block
// whose alternatives race over a private store server through the
// multiple-worlds message layer. It is the third apps adapter (after
// recovery blocks and OR-Prolog) and the first whose alternatives
// share mutable state — the workload that makes receiver splitting and
// contradiction cascades part of the serving hot path.
package stm

import (
	"fmt"
	"time"

	"altrun/internal/core"
	"altrun/internal/serve"
	istm "altrun/internal/stm"
)

// Kind is the job-history bucket for STM transaction blocks.
const Kind = "stm"

// Result is the extracted outcome of a committed transaction block.
type Result struct {
	// Winner is the committed alternative's index.
	Winner int `json:"winner"`
	// Pages is the final image of the contended sink pages (the
	// reserved winner page excluded).
	Pages []uint64 `json:"pages"`
}

// JobFromSpec builds a serve.Job from a wire spec. Init spawns and
// seeds the block's private store, the alternatives run the generated
// transactions against it, Extract replays the sequential oracle over
// the surviving copy's pages, and Cleanup retires the store's world
// tree on every terminal path.
//
// The store is private to the job on purpose: store copies accumulate
// assumptions about the fates of the worlds that message them, and a
// reply carrying assumptions about another block's siblings could
// never be delivered to an alternative (only servers split). One store
// per block keeps every predicate in a reply implied by its reader.
func JobFromSpec(spec istm.TxnSpec) serve.Job {
	cfg := spec.Config()
	name := fmt.Sprintf("txn-%d", spec.TxnID)
	var store *istm.Store
	return serve.Job{
		Kind:      Kind,
		Name:      name,
		Alts:      istm.Alts(&store, cfg),
		MaxDegree: spec.MaxDegree,
		Deadline:  time.Duration(spec.DeadlineMS) * time.Millisecond,
		Init: func(w *core.World) error {
			store = istm.NewStore(w.Runtime(), "store:"+name, cfg.StoreKeys())
			return store.Seed(w, istm.InitVals(cfg), cfg.ReadTimeout)
		},
		Extract: func(w *core.World) (any, error) {
			final, err := store.ReadAll(w, cfg.ReadTimeout)
			if err != nil {
				return nil, err
			}
			winner, err := istm.CheckFinal(cfg, final)
			if err != nil {
				return nil, err
			}
			return Result{Winner: winner, Pages: final[:cfg.Keys]}, nil
		},
		Cleanup: func(*core.World) {
			if store != nil {
				_ = store.Close()
			}
		},
	}
}
