package stm

import (
	"context"
	"testing"
	"time"

	"altrun/internal/core"
	"altrun/internal/serve"
	istm "altrun/internal/stm"
)

func runSpec(t *testing.T, pool *serve.Pool, spec istm.TxnSpec) serve.JobResult {
	t.Helper()
	tk, err := pool.Submit(JobFromSpec(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := tk.Wait(ctx)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	return res
}

// TestJobThroughPool runs an STM block through the service layer and
// checks the extracted result against the oracle, then verifies the
// store's world tree was cleaned up (Cleanup hook) — live worlds return
// to zero once the job is terminal.
func TestJobThroughPool(t *testing.T) {
	rt := core.New(core.Config{})
	pool, err := serve.NewPool(serve.Config{Workers: 2, SpecTokens: 8, Runtime: rt})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	defer pool.Drain(context.Background())

	spec := istm.TxnSpec{TxnID: 1, Keys: 6, Alts: 4, Ops: 8, ReadFrac: 0.4, Seed: 17}
	res := runSpec(t, pool, spec)
	if res.Status != serve.StatusDone {
		t.Fatalf("status %v (err %v), want done", res.Status, res.Err)
	}
	out, ok := res.Value.(Result)
	if !ok {
		t.Fatalf("value %T, want stm.Result", res.Value)
	}
	if out.Winner != res.WinnerIndex {
		t.Fatalf("store winner %d, block winner %d", out.Winner, res.WinnerIndex)
	}
	if len(out.Pages) != spec.Keys {
		t.Fatalf("%d pages, want %d", len(out.Pages), spec.Keys)
	}

	// The job's store tree must be gone: only cleanup can retire it
	// (the root world is shut down by the pool, the store by Cleanup).
	deadline := time.Now().Add(5 * time.Second)
	for rt.LiveWorlds() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d worlds still live after job finished", rt.LiveWorlds())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSequentialBaselineThroughPool: MaxDegree 1 is the §5.1 sequential
// fall-through; with an abort-injected first alternative the pool's
// lazy waves must advance to the second.
func TestSequentialBaselineThroughPool(t *testing.T) {
	rt := core.New(core.Config{})
	pool, err := serve.NewPool(serve.Config{Workers: 2, SpecTokens: 8, Runtime: rt})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	defer pool.Drain(context.Background())

	spec := istm.TxnSpec{TxnID: 2, Keys: 4, Alts: 3, Ops: 6, ReadFrac: 0.2, Seed: 23, MaxDegree: 1}
	res := runSpec(t, pool, spec)
	if res.Status != serve.StatusDone {
		t.Fatalf("status %v (err %v), want done", res.Status, res.Err)
	}
	if res.Waves != 1 {
		t.Fatalf("degree-1 no-abort job took %d waves, want 1", res.Waves)
	}

	// Every second alternative aborts (indexes 1, 3): degree-1 execution
	// must still find a committing alternative within the block.
	spec = istm.TxnSpec{TxnID: 3, Keys: 4, Alts: 4, Ops: 6, ReadFrac: 0.2, Seed: 29, AbortEvery: 2, MaxDegree: 1}
	res = runSpec(t, pool, spec)
	if res.Status != serve.StatusDone {
		t.Fatalf("abort-injected sequential job: status %v (err %v), want done", res.Status, res.Err)
	}
	if out := res.Value.(Result); out.Winner%2 != 0 {
		t.Fatalf("winner %d is an abort-injected alternative", out.Winner)
	}
}
