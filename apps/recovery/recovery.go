// Package recovery is the public surface of the repository's recovery-
// block implementation (the paper's §5.1 application): N independently-
// written versions of a computation guarded by one acceptance test,
// executed either sequentially with rollback or concurrently with
// fastest-acceptable-first commit.
//
//	block := &recovery.Block{
//	    Name:       "parse-config",
//	    Alternates: []recovery.Alternate{{Name: "primary", Version: v1}, {Name: "backup", Version: v2}},
//	    AcceptanceTest: check,
//	}
//	idx, err := block.RunSequential(world)            // classic
//	res, err := block.RunConcurrent(world,            // the paper's §5.1.2
//	    recovery.DefaultConcurrentOptions(time.Second))
package recovery

import (
	"time"

	internal "altrun/internal/recovery"

	"altrun/internal/core"
)

// Core types.
type (
	// Block is a recovery block: ordered alternates plus one
	// acceptance test applied to all of them.
	Block = internal.Block
	// Alternate is one independently-written version.
	Alternate = internal.Alternate
)

// ErrNoAcceptableAlternate is the block's failure outcome.
var ErrNoAcceptableAlternate = internal.ErrNoAcceptableAlternate

// DefaultConcurrentOptions returns the §5.1.2 configuration: full
// state copies so that shared-page loss cannot fail every alternate.
func DefaultConcurrentOptions(timeout time.Duration) core.Options {
	return internal.DefaultConcurrentOptions(timeout)
}

// Array helpers used by the examples and the demo block.
var (
	// WriteIntArray stores xs at the start of a world's space.
	WriteIntArray = internal.WriteIntArray
	// ReadIntArray loads the array stored by WriteIntArray.
	ReadIntArray = internal.ReadIntArray
	// SortVersion adapts an in-memory sorter into an Alternate.
	SortVersion = internal.SortVersion
	// SortedAcceptanceTest verifies order and checksum.
	SortedAcceptanceTest = internal.SortedAcceptanceTest
)

// ArraySpaceSize returns the space needed for n elements.
func ArraySpaceSize(n int) int64 { return internal.ArraySpaceSize(n) }

// Sum returns the checksum SortedAcceptanceTest expects.
func Sum(xs []int) int64 { return internal.Sum(xs) }
