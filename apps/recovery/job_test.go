package recovery

import (
	"context"
	"sort"
	"testing"
	"time"

	"altrun/internal/serve"
	"altrun/internal/workload"
)

func TestSortJobThroughPool(t *testing.T) {
	p, err := serve.NewPool(serve.Config{Workers: 2, SpecTokens: 4, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := p.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	xs := workload.ReversedList(256)
	// Faulty primary: the acceptance test must reject it and a backup
	// version must commit.
	tk, err := p.Submit(SortJob(xs, 0, true, 30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := tk.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != serve.StatusDone {
		t.Fatalf("status = %v (err %v), want done", res.Status, res.Err)
	}
	if res.Winner == "primary-quicksort" {
		t.Fatal("fault-injected primary passed the acceptance test")
	}
	got, ok := res.Value.([]int)
	if !ok {
		t.Fatalf("Value type %T, want []int", res.Value)
	}
	want := append([]int(nil), xs...)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
