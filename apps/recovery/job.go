package recovery

import (
	"time"

	"altrun/internal/core"
	"altrun/internal/serve"
	"altrun/internal/workload"
)

// BlockJob adapts a recovery block into a serve.Job: each alternate
// becomes one alternative guarded by the block's acceptance test, and
// the pool races them under its speculation budget instead of spawning
// all at once. FullCopy is kept on (§5.1.2: concurrent recovery blocks
// copy all of the state so that shared-page loss cannot fail every
// alternate). init seeds the root world before the block runs; extract
// reads the committed result (either may be nil).
func BlockJob(b *Block, spaceSize int64, deadline time.Duration,
	init func(w *core.World) error, extract func(w *core.World) (any, error)) serve.Job {
	alts := make([]core.Alt, len(b.Alternates))
	for i, a := range b.Alternates {
		alts[i] = core.Alt{
			Name:  a.Name,
			Body:  a.Version,
			Guard: b.AcceptanceTest,
		}
	}
	return serve.Job{
		Kind:      "recovery:" + b.Name,
		Name:      b.Name,
		Alts:      alts,
		SpaceSize: spaceSize,
		Init:      init,
		Extract:   extract,
		Deadline:  deadline,
		FullCopy:  true,
	}
}

// SortJob builds the demo sorting recovery block (three independently-
// written sorters, the primary optionally fault-injected) as a
// submittable job over the given input. The result value is the sorted
// []int.
func SortJob(xs []int, perCompare time.Duration, faulty bool, deadline time.Duration) serve.Job {
	return SortJobSkewed(xs, perCompare, 1, faulty, deadline)
}

// SortJobSkewed is SortJob with a dominant-alternative skew knob: skew
// multiplies the simulated per-comparison cost of the secondary and
// tertiary sorters, so skew > 1 makes the primary the clearly dominant
// alternative — the PI < 1 regime where the adaptive controller should
// stop speculating and fall back to sequential execution. skew ≤ 1
// keeps all versions at the same per-comparison cost; skewed jobs carry
// their own kind ("recovery:sort-skew") so their history does not
// contaminate the uniform workload's.
func SortJobSkewed(xs []int, perCompare time.Duration, skew float64, faulty bool, deadline time.Duration) serve.Job {
	input := append([]int(nil), xs...)
	name := "sort"
	slowCompare := perCompare
	if skew > 1 {
		name = "sort-skew"
		slowCompare = time.Duration(float64(perCompare) * skew)
	}
	b := &Block{
		Name: name,
		Alternates: []Alternate{
			SortVersion("primary-quicksort", workload.NaiveQuicksort, perCompare, faulty),
			SortVersion("secondary-heapsort", workload.Heapsort, slowCompare, false),
			SortVersion("tertiary-insertion", workload.InsertionSort, slowCompare, false),
		},
		AcceptanceTest: SortedAcceptanceTest(Sum(input)),
	}
	return BlockJob(b, ArraySpaceSize(len(input)), deadline,
		func(w *core.World) error { return WriteIntArray(w, input) },
		func(w *core.World) (any, error) { return ReadIntArray(w) },
	)
}
