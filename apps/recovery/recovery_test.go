package recovery_test

import (
	"math/rand"
	"testing"
	"time"

	"altrun"
	"altrun/apps/recovery"
	"altrun/internal/workload"
)

// The public surface must be self-sufficient for the recovery-block
// quickstart flow.
func TestPublicSurface(t *testing.T) {
	xs := workload.RandomList(100, rand.New(rand.NewSource(1)))
	block := &recovery.Block{
		Name: "sort",
		Alternates: []recovery.Alternate{
			recovery.SortVersion("primary", workload.Heapsort, time.Microsecond, false),
			recovery.SortVersion("backup", workload.InsertionSort, time.Microsecond, false),
		},
		AcceptanceTest: recovery.SortedAcceptanceTest(recovery.Sum(xs)),
	}
	rt := altrun.NewSim(altrun.SimConfig{
		Profile: altrun.MachineProfile{Name: "t", PageSize: 256, CPUs: 0},
	})
	rt.GoRoot("main", recovery.ArraySpaceSize(len(xs)), func(w *altrun.World) {
		if err := recovery.WriteIntArray(w, xs); err != nil {
			t.Error(err)
			return
		}
		res, err := block.RunConcurrent(w, recovery.DefaultConcurrentOptions(0))
		if err != nil {
			t.Error(err)
			return
		}
		got, err := recovery.ReadIntArray(w)
		if err != nil || !workload.IsSorted(got) {
			t.Errorf("result invalid after %q won", res.Name)
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}
