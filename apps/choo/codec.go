package choo

import (
	"encoding/gob"
	"reflect"

	"altrun/internal/transport"
	"altrun/internal/transport/codec"
)

// Wire registration for ProgSpec (codec.TagChooProgSpec). Registered
// here rather than centrally for the same reason as internal/stm's
// TxnSpec: the app sits above internal/core, which the codec package
// must not depend on.

func init() {
	gob.Register(ProgSpec{})
	transport.RegisterWire(transport.WireCodec{
		Tag:    codec.TagChooProgSpec,
		Type:   reflect.TypeOf(ProgSpec{}),
		Append: appendProgSpec,
		Decode: decodeProgSpec,
	})
	codec.RegisterSeed(transport.Envelope{
		From: 1, To: transport.Addr{Node: 2, Port: "rfork"},
		Payload: ProgSpec{
			ProgID:     9,
			Source:     "proc a { x := 1; }\nproc b { x := 2; }\nchoo(a, b);\nprint x;\n",
			DeadlineMS: 5000, MaxDegree: 2,
		},
	})
}

func appendProgSpec(p any, dst []byte) []byte {
	m := p.(ProgSpec)
	dst = transport.AppendVarint(dst, m.ProgID)
	dst = transport.AppendString(dst, m.Source)
	dst = transport.AppendVarint(dst, m.DeadlineMS)
	return transport.AppendVarint(dst, int64(m.MaxDegree))
}

func decodeProgSpec(data []byte) (any, error) {
	r := transport.NewWireReader(data)
	m := ProgSpec{
		ProgID:     r.Varint(),
		Source:     r.String(),
		DeadlineMS: r.Varint(),
		MaxDegree:  int(r.Varint()),
	}
	return m, r.Err()
}
