package choo

import (
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"altrun/internal/core"
	"altrun/internal/stm"
)

// ErrWhenRefused marks a procedure whose enabling condition evaluated
// false: its alternative fails, letting a sibling of the group win.
var ErrWhenRefused = errors.New("choo: when condition refused")

// ErrSteps marks a program that exhausted its step budget (the runtime
// stand-in for nontermination — Go cannot preempt a spinning world).
var ErrSteps = errors.New("choo: step budget exhausted")

// DefaultMaxSteps bounds one program execution across all its worlds.
const DefaultMaxSteps = 1 << 20

// Machine executes a resolved program against an STM store. One
// machine serves every world of one program run — the step budget and
// variable→page map are shared; all mutable program state lives in the
// store, which is what makes procedures splittable contenders.
type Machine struct {
	Prog *Program
	// Store holds the program's variables (key = index into Prog.Vars).
	Store *stm.Store
	// ReadTimeout bounds each variable read (default 2s).
	ReadTimeout time.Duration
	// MaxSteps bounds total evaluation steps (default DefaultMaxSteps).
	MaxSteps int64
	// PrintPrefix tags console lines so a job's extract can collect its
	// own output from the shared console device.
	PrintPrefix string

	steps atomic.Int64
}

// StoreKeys returns the page count a store for prog needs (at least
// one: a store of zero pages is not addressable).
func StoreKeys(prog *Program) int {
	if len(prog.Vars) == 0 {
		return 1
	}
	return len(prog.Vars)
}

func (m *Machine) timeout() time.Duration {
	if m.ReadTimeout <= 0 {
		return 2 * time.Second
	}
	return m.ReadTimeout
}

func (m *Machine) charge() error {
	limit := m.MaxSteps
	if limit <= 0 {
		limit = DefaultMaxSteps
	}
	if m.steps.Add(1) > limit {
		return ErrSteps
	}
	return nil
}

// Exec runs statements on behalf of w: assignments and reads go
// through the store (split per the receiver's assumptions about w),
// choo groups become alternative blocks of w.
func (m *Machine) Exec(w *core.World, stmts []Stmt) error {
	for _, s := range stmts {
		if err := m.execStmt(w, s); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) execStmt(w *core.World, s Stmt) error {
	if err := m.charge(); err != nil {
		return err
	}
	if w.Cancelled() {
		return fmt.Errorf("%v: world cancelled", s.Position())
	}
	switch x := s.(type) {
	case *Assign:
		v, err := m.eval(w, x.X)
		if err != nil {
			return err
		}
		return m.Store.Write(w, m.Prog.VarKey(x.Name), uint64(v))
	case *Print:
		v, err := m.eval(w, x.X)
		if err != nil {
			return err
		}
		// Speculative worlds defer the line; a loser's print is never
		// performed (§3.4.2 sources), a winner's is carried upward.
		return w.WriteConsole(m.PrintPrefix + strconv.FormatInt(v, 10))
	case *If:
		v, err := m.eval(w, x.Cond)
		if err != nil {
			return err
		}
		if v != 0 {
			return m.Exec(w, x.Then)
		}
		return m.Exec(w, x.Else)
	case *While:
		for {
			if err := m.charge(); err != nil {
				return err
			}
			v, err := m.eval(w, x.Cond)
			if err != nil {
				return err
			}
			if v == 0 {
				return nil
			}
			if err := m.Exec(w, x.Body); err != nil {
				return err
			}
		}
	case *Choo:
		return m.execChoo(w, x)
	default:
		return fmt.Errorf("%v: unexecutable statement %T", s.Position(), s)
	}
}

// execChoo lowers one choo group to an alternative block: each named
// procedure runs in a private COW world under "I complete, my group
// siblings don't"; their variable accesses contend through the store;
// the first to finish with its when condition satisfied commits.
func (m *Machine) execChoo(w *core.World, c *Choo) error {
	alts := make([]core.Alt, len(c.Procs))
	for i, name := range c.Procs {
		d := m.Prog.Procs[name]
		alts[i] = core.Alt{
			Name: name,
			Body: func(cw *core.World) error { return m.execProc(cw, d) },
		}
	}
	_, err := w.RunAlt(core.Options{SyncElimination: true}, alts...)
	if errors.Is(err, core.ErrAllFailed) {
		return fmt.Errorf("%v: every procedure of choo(%v) refused", c.Pos, c.Procs)
	}
	return err
}

func (m *Machine) execProc(w *core.World, d *ProcDecl) error {
	if d.When != nil {
		v, err := m.eval(w, d.When)
		if err != nil {
			return err
		}
		if v == 0 {
			return fmt.Errorf("%s at %v: %w", d.Name, d.When.Position(), ErrWhenRefused)
		}
	}
	return m.Exec(w, d.Body)
}

func (m *Machine) eval(w *core.World, e Expr) (int64, error) {
	if err := m.charge(); err != nil {
		return 0, err
	}
	switch x := e.(type) {
	case *IntLit:
		return x.Val, nil
	case *VarRef:
		v, err := m.Store.Read(w, m.Prog.VarKey(x.Name), m.timeout())
		if err != nil {
			return 0, fmt.Errorf("%v: read %s: %w", x.Pos, x.Name, err)
		}
		return int64(v), nil
	case *Unary:
		v, err := m.eval(w, x.X)
		if err != nil {
			return 0, err
		}
		if x.Op == "-" {
			return -v, nil
		}
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	case *Binary:
		a, err := m.eval(w, x.X)
		if err != nil {
			return 0, err
		}
		b, err := m.eval(w, x.Y)
		if err != nil {
			return 0, err
		}
		return applyBinary(x.Pos, x.Op, a, b)
	default:
		return 0, fmt.Errorf("%v: unevaluable expression %T", e.Position(), e)
	}
}

// applyBinary is shared with the sequential oracle, so both engines
// agree on arithmetic down to the division-by-zero error.
func applyBinary(pos Pos, op string, a, b int64) (int64, error) {
	switch op {
	case "+":
		return a + b, nil
	case "-":
		return a - b, nil
	case "*":
		return a * b, nil
	case "/":
		if b == 0 {
			return 0, fmt.Errorf("%v: division by zero", pos)
		}
		return a / b, nil
	case "%":
		if b == 0 {
			return 0, fmt.Errorf("%v: modulo by zero", pos)
		}
		return a % b, nil
	case "==":
		return b2i(a == b), nil
	case "!=":
		return b2i(a != b), nil
	case "<":
		return b2i(a < b), nil
	case "<=":
		return b2i(a <= b), nil
	case ">":
		return b2i(a > b), nil
	case ">=":
		return b2i(a >= b), nil
	default:
		return 0, fmt.Errorf("%v: unknown operator %q", pos, op)
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ReadVars reads every program variable's final value through w.
func (m *Machine) ReadVars(w *core.World) (map[string]int64, error) {
	out := make(map[string]int64, len(m.Prog.Vars))
	for i, name := range m.Prog.Vars {
		v, err := m.Store.Read(w, i, m.timeout())
		if err != nil {
			return nil, fmt.Errorf("read final %s: %w", name, err)
		}
		out[name] = int64(v)
	}
	return out, nil
}
