package choo

import (
	"fmt"
	"strconv"
	"unicode"
)

// tokKind enumerates token kinds; punctuation and keywords are their
// own kinds so the parser switches on kind alone.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokAssign // :=
	tokSemi
	tokComma
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokOp // + - * / % == != < <= > >= !
	tokProc
	tokChoo
	tokIf
	tokElse
	tokWhile
	tokPrint
	tokWhen
)

var keywords = map[string]tokKind{
	"proc":  tokProc,
	"choo":  tokChoo,
	"if":    tokIf,
	"else":  tokElse,
	"while": tokWhile,
	"print": tokPrint,
	"when":  tokWhen,
}

type token struct {
	kind tokKind
	pos  Pos
	text string
	val  int64 // tokInt
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokInt:
		return fmt.Sprintf("integer %d", t.val)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex tokenizes src. Errors carry positions ("line:col: ...").
func lex(src string) ([]token, error) {
	var toks []token
	runes := []rune(src)
	line, col := 1, 1
	i := 0
	advance := func() {
		if runes[i] == '\n' {
			line, col = line+1, 1
		} else {
			col++
		}
		i++
	}
	for i < len(runes) {
		c := runes[i]
		pos := Pos{line, col}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance()
		case c == '/' && i+1 < len(runes) && runes[i+1] == '/':
			for i < len(runes) && runes[i] != '\n' {
				advance()
			}
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(runes) && (unicode.IsLetter(runes[i]) || unicode.IsDigit(runes[i]) || runes[i] == '_') {
				advance()
			}
			text := string(runes[start:i])
			if k, isKw := keywords[text]; isKw {
				toks = append(toks, token{kind: k, pos: pos, text: text})
			} else {
				toks = append(toks, token{kind: tokIdent, pos: pos, text: text})
			}
		case unicode.IsDigit(c):
			start := i
			for i < len(runes) && unicode.IsDigit(runes[i]) {
				advance()
			}
			text := string(runes[start:i])
			v, err := strconv.ParseInt(text, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%v: integer %s overflows int64", pos, text)
			}
			toks = append(toks, token{kind: tokInt, pos: pos, text: text, val: v})
		case c == ':':
			if i+1 < len(runes) && runes[i+1] == '=' {
				advance()
				advance()
				toks = append(toks, token{kind: tokAssign, pos: pos, text: ":="})
			} else {
				return nil, fmt.Errorf("%v: unexpected ':' (did you mean ':='?)", pos)
			}
		case c == ';':
			advance()
			toks = append(toks, token{kind: tokSemi, pos: pos, text: ";"})
		case c == ',':
			advance()
			toks = append(toks, token{kind: tokComma, pos: pos, text: ","})
		case c == '(':
			advance()
			toks = append(toks, token{kind: tokLParen, pos: pos, text: "("})
		case c == ')':
			advance()
			toks = append(toks, token{kind: tokRParen, pos: pos, text: ")"})
		case c == '{':
			advance()
			toks = append(toks, token{kind: tokLBrace, pos: pos, text: "{"})
		case c == '}':
			advance()
			toks = append(toks, token{kind: tokRBrace, pos: pos, text: "}"})
		case c == '=' || c == '!' || c == '<' || c == '>':
			op := string(c)
			advance()
			if i < len(runes) && runes[i] == '=' {
				op += "="
				advance()
			}
			if op == "=" {
				return nil, fmt.Errorf("%v: unexpected '=' (assignment is ':=', equality is '==')", pos)
			}
			toks = append(toks, token{kind: tokOp, pos: pos, text: op})
		case c == '+' || c == '-' || c == '*' || c == '/' || c == '%':
			advance()
			toks = append(toks, token{kind: tokOp, pos: pos, text: string(c)})
		default:
			return nil, fmt.Errorf("%v: unexpected character %q", pos, c)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: Pos{line, col}})
	return toks, nil
}
