package choo

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"altrun/internal/core"
	"altrun/internal/serve"
	"altrun/internal/stm"
)

// Kind is the job-history bucket for choo programs.
const Kind = "choo"

// Result is the extracted outcome of a completed program.
type Result struct {
	// Vars are the final variable values, read from the surviving store
	// copy.
	Vars map[string]int64 `json:"vars"`
	// Prints is the program's console output in order — committed
	// procedures' lines only, losers' prints were never performed.
	Prints []string `json:"prints"`
}

// JobOptions tunes a compiled job.
type JobOptions struct {
	// MaxDegree caps concurrent alternatives (pool default if 0).
	MaxDegree int
	// Deadline bounds the job end to end (pool default if 0).
	Deadline time.Duration
	// ReadTimeout bounds each variable read (default 2s).
	ReadTimeout time.Duration
	// MaxSteps bounds total evaluation steps (default DefaultMaxSteps).
	MaxSteps int64
}

// jobSeq makes each compiled job's store name and print prefix unique
// on the runtime, so concurrent jobs sharing the console can tell
// their output apart.
var jobSeq atomic.Int64

// splitProgram cuts the top-level statement list at its first choo
// group: prefix runs before the block, the group becomes the block's
// alternatives, suffix runs after the commit.
func splitProgram(prog *Program) (prefix []Stmt, group *Choo, suffix []Stmt) {
	for i, s := range prog.Stmts {
		if c, isChoo := s.(*Choo); isChoo {
			return prog.Stmts[:i], c, prog.Stmts[i+1:]
		}
	}
	return nil, nil, nil
}

// CompileJob lowers a resolved program to a serve job.
//
// The lowering mirrors the pool's own job shape: Init spawns the
// program's variable store and executes the statements before the
// first top-level choo group on the root world; the group's procedures
// become the job's alternatives, racing over the store through the
// message layer; Extract executes the remaining statements on the
// committed root (further choo groups become nested blocks via
// root.RunAlt), then reads back every variable and collects the
// program's print lines from the console. A program with no top-level
// choo group runs whole as a single "main" alternative. Cleanup
// retires the store's world tree on every terminal path.
func CompileJob(name string, prog *Program, opt JobOptions) serve.Job {
	id := jobSeq.Add(1)
	prefix, group, suffix := splitProgram(prog)
	m := &Machine{
		Prog:        prog,
		ReadTimeout: opt.ReadTimeout,
		MaxSteps:    opt.MaxSteps,
		PrintPrefix: fmt.Sprintf("choo#%d|", id),
	}
	var alts []core.Alt
	if group != nil {
		alts = make([]core.Alt, len(group.Procs))
		for i, pn := range group.Procs {
			d := prog.Procs[pn]
			alts[i] = core.Alt{
				Name: pn,
				Body: func(cw *core.World) error { return m.execProc(cw, d) },
			}
		}
	} else {
		alts = []core.Alt{{
			Name: "main",
			Body: func(cw *core.World) error { return m.Exec(cw, prog.Stmts) },
		}}
	}
	keys := StoreKeys(prog)
	return serve.Job{
		Kind:      Kind,
		Name:      name,
		Alts:      alts,
		MaxDegree: opt.MaxDegree,
		Deadline:  opt.Deadline,
		Init: func(w *core.World) error {
			m.Store = stm.NewStore(w.Runtime(), fmt.Sprintf("choo-store#%d", id), keys)
			// Seeding zeros is a liveness fence: a failure here surfaces
			// as a clean init error instead of a read timeout mid-block.
			if err := m.Store.Seed(w, make([]uint64, keys), m.timeout()); err != nil {
				return err
			}
			return m.Exec(w, prefix)
		},
		Extract: func(w *core.World) (any, error) {
			if err := m.Exec(w, suffix); err != nil {
				return nil, err
			}
			vars, err := m.ReadVars(w)
			if err != nil {
				return nil, err
			}
			prints := []string{}
			for _, line := range w.Runtime().Console().Output() {
				if strings.HasPrefix(line, m.PrintPrefix) {
					prints = append(prints, strings.TrimPrefix(line, m.PrintPrefix))
				}
			}
			return Result{Vars: vars, Prints: prints}, nil
		},
		Cleanup: func(*core.World) {
			if m.Store != nil {
				_ = m.Store.Close()
			}
		},
	}
}
