package choo

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
)

// Outcome is one possible sequential result of a program: final
// variable values and print output, for a particular resolution of
// every choo group encountered.
type Outcome struct {
	// Winners names the committed procedure of each choo group in
	// encounter order.
	Winners []string
	Vars    map[string]int64
	Prints  []string
}

// key canonicalizes an outcome for deduplication (different winner
// vectors can produce identical observable results).
func (o Outcome) key() string {
	names := make([]string, 0, len(o.Vars))
	for n := range o.Vars {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		s += n + "=" + strconv.FormatInt(o.Vars[n], 10) + ";"
	}
	s += "|"
	for _, p := range o.Prints {
		s += p + "\n"
	}
	return s
}

// Matches reports whether vars/prints equal this outcome's observable
// state (winner vectors are not compared: the runtime may commit any
// viable procedure).
func (o Outcome) Matches(vars map[string]int64, prints []string) bool {
	if len(vars) != len(o.Vars) || len(prints) != len(o.Prints) {
		return false
	}
	for n, v := range o.Vars {
		if vars[n] != v {
			return false
		}
	}
	for i, p := range o.Prints {
		if prints[i] != p {
			return false
		}
	}
	return true
}

// ErrOracleBudget is returned when choice-vector enumeration exceeds
// the caller's bound.
var ErrOracleBudget = errors.New("choo: oracle outcome budget exhausted")

// needChoice is the oracle interpreter's signal that execution reached
// a choo group beyond the current choice script. It carries the group
// and the procedures viable at that state so the enumerator can branch
// without replaying.
type needChoice struct {
	group  *Choo
	viable []int // indices into group.Procs
}

func (n *needChoice) Error() string { return "choo: oracle needs a choice" }

// oracleState is the pure sequential machine the oracle runs.
type oracleState struct {
	prog     *Program
	vars     map[string]int64
	prints   []string
	winners  []string
	script   []int // winner index per choo group, encounter order
	nextChoo int
	steps    int64
	maxSteps int64
}

func (st *oracleState) charge() error {
	st.steps++
	if st.steps > st.maxSteps {
		return ErrSteps
	}
	return nil
}

func (st *oracleState) exec(stmts []Stmt) error {
	for _, s := range stmts {
		if err := st.execStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (st *oracleState) execStmt(s Stmt) error {
	if err := st.charge(); err != nil {
		return err
	}
	switch x := s.(type) {
	case *Assign:
		v, err := st.eval(x.X)
		if err != nil {
			return err
		}
		st.vars[x.Name] = v
		return nil
	case *Print:
		v, err := st.eval(x.X)
		if err != nil {
			return err
		}
		st.prints = append(st.prints, strconv.FormatInt(v, 10))
		return nil
	case *If:
		v, err := st.eval(x.Cond)
		if err != nil {
			return err
		}
		if v != 0 {
			return st.exec(x.Then)
		}
		return st.exec(x.Else)
	case *While:
		for {
			if err := st.charge(); err != nil {
				return err
			}
			v, err := st.eval(x.Cond)
			if err != nil {
				return err
			}
			if v == 0 {
				return nil
			}
			if err := st.exec(x.Body); err != nil {
				return err
			}
		}
	case *Choo:
		return st.execChoo(x)
	default:
		return fmt.Errorf("%v: unexecutable statement %T", s.Position(), s)
	}
}

// execChoo resolves one group against the script: past the script's
// end, it reports which procedures are viable (when satisfied) so the
// enumerator can branch.
func (st *oracleState) execChoo(c *Choo) error {
	k := st.nextChoo
	st.nextChoo++
	if k >= len(st.script) {
		var viable []int
		for i, name := range c.Procs {
			ok, err := st.whenHolds(st.prog.Procs[name])
			if err != nil {
				return err
			}
			if ok {
				viable = append(viable, i)
			}
		}
		if len(viable) == 0 {
			return fmt.Errorf("%v: every procedure of choo(%v) refused", c.Pos, c.Procs)
		}
		return &needChoice{group: c, viable: viable}
	}
	name := c.Procs[st.script[k]]
	d := st.prog.Procs[name]
	ok, err := st.whenHolds(d)
	if err != nil {
		return err
	}
	if !ok {
		// Viability was judged when the script was extended; scripts are
		// deterministic replays, so a scripted refusal means the machine
		// diverged — a bug, not a legal path.
		return fmt.Errorf("%v: scripted procedure %q refused on replay", c.Pos, name)
	}
	st.winners = append(st.winners, name)
	return st.exec(d.Body)
}

func (st *oracleState) whenHolds(d *ProcDecl) (bool, error) {
	if d.When == nil {
		return true, nil
	}
	v, err := st.eval(d.When)
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

func (st *oracleState) eval(e Expr) (int64, error) {
	if err := st.charge(); err != nil {
		return 0, err
	}
	switch x := e.(type) {
	case *IntLit:
		return x.Val, nil
	case *VarRef:
		return st.vars[x.Name], nil
	case *Unary:
		v, err := st.eval(x.X)
		if err != nil {
			return 0, err
		}
		if x.Op == "-" {
			return -v, nil
		}
		return b2i(v == 0), nil
	case *Binary:
		a, err := st.eval(x.X)
		if err != nil {
			return 0, err
		}
		b, err := st.eval(x.Y)
		if err != nil {
			return 0, err
		}
		return applyBinary(x.Pos, x.Op, a, b)
	default:
		return 0, fmt.Errorf("%v: unevaluable expression %T", e.Position(), e)
	}
}

// runScript executes the program under one choice script. Returns the
// outcome, or the choice point where the script ran out.
func runScript(prog *Program, script []int, maxSteps int64) (*Outcome, *needChoice, error) {
	st := &oracleState{
		prog:     prog,
		vars:     map[string]int64{},
		script:   script,
		maxSteps: maxSteps,
	}
	err := st.exec(prog.Stmts)
	var nc *needChoice
	if errors.As(err, &nc) {
		return nil, nc, nil
	}
	if err != nil {
		return nil, nil, err
	}
	vars := make(map[string]int64, len(prog.Vars))
	for _, v := range prog.Vars {
		vars[v] = st.vars[v]
	}
	return &Outcome{Winners: st.winners, Vars: vars, Prints: st.prints}, nil, nil
}

// Oracle enumerates every sequential outcome of the program: a
// depth-first search over which viable procedure wins each choo group
// encountered, deduplicated by observable state. maxOutcomes bounds
// the enumeration (<= 0 defaults to 512); exceeding it returns
// ErrOracleBudget. Paths that fail mid-way (division by zero, every
// procedure refusing) are dropped — the concurrent runtime reports
// those as block or job failures, not states — but if NO path
// completes the first such error is returned.
func Oracle(prog *Program, maxOutcomes int) ([]Outcome, error) {
	if maxOutcomes <= 0 {
		maxOutcomes = 512
	}
	var out []Outcome
	seen := map[string]struct{}{}
	explored := 0
	stack := [][]int{{}}
	var firstErr error
	for len(stack) > 0 {
		explored++
		if explored > maxOutcomes*8 {
			return nil, fmt.Errorf("%w: explored %d paths", ErrOracleBudget, explored)
		}
		script := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		oc, nc, err := runScript(prog, script, DefaultMaxSteps)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if nc != nil {
			for i := len(nc.viable) - 1; i >= 0; i-- {
				child := append(append(make([]int, 0, len(script)+1), script...), nc.viable[i])
				stack = append(stack, child)
			}
			continue
		}
		if _, dup := seen[oc.key()]; !dup {
			seen[oc.key()] = struct{}{}
			out = append(out, *oc)
			if len(out) > maxOutcomes {
				return nil, fmt.Errorf("%w: more than %d distinct outcomes", ErrOracleBudget, maxOutcomes)
			}
		}
	}
	if len(out) == 0 {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, errors.New("choo: oracle found no completing execution")
	}
	return out, nil
}
