package choo

import (
	"context"
	"testing"
	"time"

	"altrun/internal/core"
	"altrun/internal/serve"
)

func runProgram(t *testing.T, rt *core.Runtime, src string, opt JobOptions) serve.JobResult {
	t.Helper()
	pool, err := serve.NewPool(serve.Config{Workers: 2, SpecTokens: 8, Runtime: rt})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	t.Cleanup(func() { pool.Drain(context.Background()) })
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tk, err := pool.Submit(CompileJob(t.Name(), prog, opt))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := tk.Wait(ctx)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	return res
}

// checkAgainstOracle asserts the runtime result is one of the program's
// sequential outcomes — the paper's transparency claim for choo: the
// concurrent execution is indistinguishable from SOME sequential
// resolution of every choice.
func checkAgainstOracle(t *testing.T, src string, res serve.JobResult) Result {
	t.Helper()
	if res.Status != serve.StatusDone {
		t.Fatalf("status %v (err %v), want done", res.Status, res.Err)
	}
	out, ok := res.Value.(Result)
	if !ok {
		t.Fatalf("value %T, want choo.Result", res.Value)
	}
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	outs, err := Oracle(prog, 0)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	for _, o := range outs {
		if o.Matches(out.Vars, out.Prints) {
			return out
		}
	}
	t.Fatalf("result vars=%v prints=%v matches none of %d sequential outcomes %+v",
		out.Vars, out.Prints, len(outs), outs)
	return Result{}
}

// TestContendedGroupSplitsStore is the front-end's core claim: a choo
// group whose procedures write the same variable forces receiver
// splits in the store, and the committed state is a sequential outcome.
func TestContendedGroupSplitsStore(t *testing.T) {
	src := `
x := 5;
proc double { x := x * 2; }
proc reset  { x := 0; }
proc bump   { x := x + 1; }
choo(double, reset, bump);
print x;
`
	rt := core.New(core.Config{})
	before := rt.MsgStats()
	res := runProgram(t, rt, src, JobOptions{})
	out := checkAgainstOracle(t, src, res)
	after := rt.MsgStats()
	if after.Splits <= before.Splits {
		t.Errorf("no receiver splits (%d -> %d): contending procedures must split the store",
			before.Splits, after.Splits)
	}
	if len(out.Prints) != 1 {
		t.Errorf("prints = %v, want exactly the winner's value", out.Prints)
	}
}

// TestWhenGuardSelectsWinner: a statically-false when refuses its
// procedure, so the other must commit.
func TestWhenGuardSelectsWinner(t *testing.T) {
	src := `
x := 1;
proc no  { when x > 100; x := -1; }
proc yes { when x == 1; x := 42; }
choo(no, yes);
`
	rt := core.New(core.Config{})
	res := runProgram(t, rt, src, JobOptions{})
	out := checkAgainstOracle(t, src, res)
	if out.Vars["x"] != 42 {
		t.Errorf("x = %d, want 42 (only yes is viable)", out.Vars["x"])
	}
	if res.Winner != "yes" {
		t.Errorf("winner = %q, want yes", res.Winner)
	}
}

// TestChainedGroupsThroughExtract: the second top-level group lowers to
// a nested block run by Extract on the committed root, its when guards
// reading the first group's outcome.
func TestChainedGroupsThroughExtract(t *testing.T) {
	src := `
proc a { x := 1; }
proc b { x := 2; }
proc lo { when x == 1; y := 10; }
proc hi { when x == 2; y := 20; }
choo(a, b);
choo(lo, hi);
print y;
`
	rt := core.New(core.Config{})
	res := runProgram(t, rt, src, JobOptions{})
	out := checkAgainstOracle(t, src, res)
	if out.Vars["y"] != out.Vars["x"]*10 {
		t.Errorf("vars %v violate y == 10x", out.Vars)
	}
}

// TestNoChooRunsAsSingleAlternative: a group-free program still runs
// (one "main" alternative), prints and all.
func TestNoChooRunsAsSingleAlternative(t *testing.T) {
	src := `
x := 0;
while x < 5 { x := x + 1; print x; }
`
	rt := core.New(core.Config{})
	res := runProgram(t, rt, src, JobOptions{})
	out := checkAgainstOracle(t, src, res)
	if out.Vars["x"] != 5 || len(out.Prints) != 5 {
		t.Errorf("vars=%v prints=%v, want x=5 and five lines", out.Vars, out.Prints)
	}
	if res.Winner != "main" {
		t.Errorf("winner = %q, want main", res.Winner)
	}
}

// TestAllRefuseFailsJob: every procedure refusing fails the job (the
// block has no committable alternative).
func TestAllRefuseFailsJob(t *testing.T) {
	src := `
proc a { when 0; x := 1; }
proc b { when 0; x := 2; }
choo(a, b);
`
	rt := core.New(core.Config{})
	res := runProgram(t, rt, src, JobOptions{})
	if res.Status != serve.StatusFailed {
		t.Fatalf("status %v, want failed (every procedure refused)", res.Status)
	}
}

// TestLosersPrintsNeverObservable: both procedures print, exactly one
// line survives — the deferred-console rule applied to the language.
func TestLosersPrintsNeverObservable(t *testing.T) {
	src := `
proc a { x := 1; print 111; }
proc b { x := 2; print 222; }
choo(a, b);
`
	rt := core.New(core.Config{})
	res := runProgram(t, rt, src, JobOptions{})
	out := checkAgainstOracle(t, src, res)
	if len(out.Prints) != 1 {
		t.Fatalf("prints = %v, want exactly the winner's line", out.Prints)
	}
	want := map[int64]string{1: "111", 2: "222"}[out.Vars["x"]]
	if out.Prints[0] != want {
		t.Errorf("print %q does not belong to winner x=%d", out.Prints[0], out.Vars["x"])
	}
}

// TestCleanupRetiresStore: after the job (success or failure), no
// worlds leak.
func TestCleanupRetiresStore(t *testing.T) {
	src := `
proc a { x := 1; }
proc b { x := 2; }
choo(a, b);
`
	rt := core.New(core.Config{})
	runProgram(t, rt, src, JobOptions{})
	deadline := time.Now().Add(5 * time.Second)
	for rt.LiveWorlds() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d worlds still live after job finished", rt.LiveWorlds())
		}
		time.Sleep(time.Millisecond)
	}
}
