package choo

import (
	"fmt"
	"time"

	"altrun/internal/serve"
)

// ProgSpec is the wire form of a choo program submission — the payload
// an rfork forwards when a program's job is placed on a peer node
// (codec tag 203). Shipping source instead of a lowered form keeps the
// wire format independent of the AST: the executing node parses.
type ProgSpec struct {
	// ProgID is the submitter-chosen program identity (names the job).
	ProgID int64
	// Source is the program text.
	Source string
	// DeadlineMS bounds the job end to end (0 = pool default).
	DeadlineMS int64
	// MaxDegree caps concurrent alternatives (0 = pool default).
	MaxDegree int
}

// Job parses the spec's source and lowers it.
func (s ProgSpec) Job() (serve.Job, error) {
	prog, err := Parse(s.Source)
	if err != nil {
		return serve.Job{}, fmt.Errorf("choo: parse: %w", err)
	}
	return CompileJob(fmt.Sprintf("choo-%d", s.ProgID), prog, JobOptions{
		MaxDegree: s.MaxDegree,
		Deadline:  time.Duration(s.DeadlineMS) * time.Millisecond,
	}), nil
}
