package choo

import (
	"fmt"
	"sort"
)

// Parse lexes, parses, and resolves a choo program. Errors carry
// source positions ("line:col: message"); the first error wins.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := resolve(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, fmt.Errorf("%v: expected %s, found %s", t.pos, what, t)
	}
	p.i++
	return t, nil
}

func (p *parser) program() (*Program, error) {
	prog := &Program{Procs: map[string]*ProcDecl{}}
	for p.cur().kind != tokEOF {
		if p.cur().kind == tokProc {
			d, err := p.procDecl()
			if err != nil {
				return nil, err
			}
			if prev, dup := prog.Procs[d.Name]; dup {
				return nil, fmt.Errorf("%v: procedure %q redeclared (first declared at %v)", d.Pos, d.Name, prev.Pos)
			}
			prog.Procs[d.Name] = d
			continue
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, s)
	}
	return prog, nil
}

func (p *parser) procDecl() (*ProcDecl, error) {
	kw := p.next() // proc
	name, err := p.expect(tokIdent, "procedure name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, "'{' opening the procedure body"); err != nil {
		return nil, err
	}
	d := &ProcDecl{Pos: kw.pos, Name: name.text}
	// "when expr;" is only legal as the body's first statement — it is
	// the enabling condition of the whole procedure.
	if p.cur().kind == tokWhen {
		p.next()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi, "';' after when condition"); err != nil {
			return nil, err
		}
		d.When = cond
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	d.Body = body
	return d, nil
}

// block parses stmt* up to (and consuming) the closing '}'.
func (p *parser) block() ([]Stmt, error) {
	var out []Stmt
	for {
		switch p.cur().kind {
		case tokRBrace:
			p.next()
			return out, nil
		case tokEOF:
			return nil, fmt.Errorf("%v: expected '}' before end of input", p.cur().pos)
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch t.kind {
	case tokIdent:
		p.next()
		if _, err := p.expect(tokAssign, "':=' after variable name"); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi, "';' after assignment"); err != nil {
			return nil, err
		}
		return &Assign{Pos: t.pos, Name: t.text, X: x}, nil
	case tokChoo:
		p.next()
		if _, err := p.expect(tokLParen, "'(' after choo"); err != nil {
			return nil, err
		}
		var procs []string
		for {
			name, err := p.expect(tokIdent, "procedure name in choo group")
			if err != nil {
				return nil, err
			}
			procs = append(procs, name.text)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(tokRParen, "')' closing the choo group"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi, "';' after choo group"); err != nil {
			return nil, err
		}
		if len(procs) < 2 {
			return nil, fmt.Errorf("%v: choo needs at least two procedures (mutual exclusion of one is vacuous)", t.pos)
		}
		return &Choo{Pos: t.pos, Procs: procs}, nil
	case tokIf:
		p.next()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLBrace, "'{' after if condition"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.cur().kind == tokElse {
			p.next()
			if _, err := p.expect(tokLBrace, "'{' after else"); err != nil {
				return nil, err
			}
			if els, err = p.block(); err != nil {
				return nil, err
			}
		}
		return &If{Pos: t.pos, Cond: cond, Then: then, Else: els}, nil
	case tokWhile:
		p.next()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLBrace, "'{' after while condition"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &While{Pos: t.pos, Cond: cond, Body: body}, nil
	case tokPrint:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi, "';' after print"); err != nil {
			return nil, err
		}
		return &Print{Pos: t.pos, X: x}, nil
	case tokWhen:
		return nil, fmt.Errorf("%v: 'when' is only legal as the first statement of a procedure body", t.pos)
	case tokProc:
		return nil, fmt.Errorf("%v: procedures must be declared at the top level", t.pos)
	default:
		return nil, fmt.Errorf("%v: expected a statement, found %s", t.pos, t)
	}
}

// Expression precedence, loosest first: comparison, additive,
// multiplicative, unary.

func (p *parser) expr() (Expr, error) { return p.comparison() }

func (p *parser) comparison() (Expr, error) {
	x, err := p.additive()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp {
		switch p.cur().text {
		case "==", "!=", "<", "<=", ">", ">=":
			op := p.next()
			y, err := p.additive()
			if err != nil {
				return nil, err
			}
			x = &Binary{Pos: op.pos, Op: op.text, X: x, Y: y}
		default:
			return x, nil
		}
	}
	return x, nil
}

func (p *parser) additive() (Expr, error) {
	x, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.next()
		y, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		x = &Binary{Pos: op.pos, Op: op.text, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) multiplicative() (Expr, error) {
	x, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && (p.cur().text == "*" || p.cur().text == "/" || p.cur().text == "%") {
		op := p.next()
		y, err := p.unary()
		if err != nil {
			return nil, err
		}
		x = &Binary{Pos: op.pos, Op: op.text, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.kind == tokOp && (t.text == "-" || t.text == "!") {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: t.pos, Op: t.text, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.next()
		return &IntLit{Pos: t.pos, Val: t.val}, nil
	case tokIdent:
		p.next()
		return &VarRef{Pos: t.pos, Name: t.text}, nil
	case tokLParen:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return x, nil
	default:
		return nil, fmt.Errorf("%v: expected an expression, found %s", t.pos, t)
	}
}

// resolve checks choo references and collects the variable set.
func resolve(prog *Program) error {
	vars := map[string]struct{}{}
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *VarRef:
			vars[x.Name] = struct{}{}
		case *Unary:
			walkExpr(x.X)
		case *Binary:
			walkExpr(x.X)
			walkExpr(x.Y)
		}
	}
	var walkStmts func(ss []Stmt) error
	walkStmts = func(ss []Stmt) error {
		for _, s := range ss {
			switch x := s.(type) {
			case *Assign:
				vars[x.Name] = struct{}{}
				walkExpr(x.X)
			case *Print:
				walkExpr(x.X)
			case *If:
				walkExpr(x.Cond)
				if err := walkStmts(x.Then); err != nil {
					return err
				}
				if err := walkStmts(x.Else); err != nil {
					return err
				}
			case *While:
				walkExpr(x.Cond)
				if err := walkStmts(x.Body); err != nil {
					return err
				}
			case *Choo:
				for _, name := range x.Procs {
					if _, known := prog.Procs[name]; !known {
						return fmt.Errorf("%v: choo references undeclared procedure %q", x.Pos, name)
					}
				}
				seen := map[string]struct{}{}
				for _, name := range x.Procs {
					if _, dup := seen[name]; dup {
						return fmt.Errorf("%v: procedure %q appears twice in one choo group", x.Pos, name)
					}
					seen[name] = struct{}{}
				}
			}
		}
		return nil
	}
	if err := walkStmts(prog.Stmts); err != nil {
		return err
	}
	for _, d := range prog.Procs {
		if d.When != nil {
			walkExpr(d.When)
		}
		if err := walkStmts(d.Body); err != nil {
			return err
		}
	}
	prog.Vars = make([]string, 0, len(vars))
	for v := range vars {
		prog.Vars = append(prog.Vars, v)
	}
	sort.Strings(prog.Vars)
	return nil
}
