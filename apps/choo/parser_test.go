package choo

import (
	"strings"
	"testing"
)

// TestParseGolden locks the lowering-relevant shape of a representative
// program: declared procs, when conditions, top-level split, and the
// resolved variable→key assignment.
func TestParseGolden(t *testing.T) {
	src := `
// two writers race for x
proc inc {
	x := x + 1;
}
proc dbl {
	when x > 0;
	x := x * 2;
}
x := 3;
choo(inc, dbl);
print x;
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Procs) != 2 {
		t.Fatalf("procs = %d, want 2", len(prog.Procs))
	}
	if prog.Procs["inc"].When != nil {
		t.Error("inc has no when condition")
	}
	if prog.Procs["dbl"].When == nil {
		t.Error("dbl's when condition was dropped")
	}
	if len(prog.Vars) != 1 || prog.Vars[0] != "x" {
		t.Fatalf("vars = %v, want [x]", prog.Vars)
	}
	if prog.VarKey("x") != 0 {
		t.Errorf("VarKey(x) = %d, want 0", prog.VarKey("x"))
	}
	prefix, group, suffix := splitProgram(prog)
	if len(prefix) != 1 {
		t.Errorf("prefix = %d stmts, want 1 (the seed assignment)", len(prefix))
	}
	if group == nil || len(group.Procs) != 2 || group.Procs[0] != "inc" || group.Procs[1] != "dbl" {
		t.Errorf("group = %+v, want choo(inc, dbl)", group)
	}
	if len(suffix) != 1 {
		t.Errorf("suffix = %d stmts, want 1 (the print)", len(suffix))
	}
}

// TestParseErrors locks error positions and messages: a front-end whose
// errors point at the wrong line is worse than no front-end.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"bare equals", "x = 1;", `1:3: unexpected '=' (assignment is ':=', equality is '==')`},
		{"bare colon", "x : 1;", `1:3: unexpected ':' (did you mean ':='?)`},
		{"missing semi", "x := 1", "1:7: expected ';' after assignment"},
		{"stray when", "when x > 0;", "1:1: 'when' is only legal as the first statement of a procedure body"},
		{"late when", "proc p { x := 1; when x; }", "1:18: 'when' is only legal as the first statement of a procedure body"},
		{"nested proc", "proc p { proc q { } }", "1:10: procedures must be declared at the top level"},
		{"one-proc choo", "proc p { x := 1; }\nchoo(p);", "2:1: choo needs at least two procedures"},
		{"undeclared", "proc p { x := 1; }\nchoo(p, q);", `2:1: choo references undeclared procedure "q"`},
		{"dup in group", "proc p { x := 1; }\nproc q { x := 2; }\nchoo(p, p);", `3:1: procedure "p" appears twice in one choo group`},
		{"redeclared", "proc p { x := 1; }\nproc p { x := 2; }", `2:1: procedure "p" redeclared (first declared at 1:1)`},
		{"unclosed block", "proc p { x := 1;", "1:17: expected '}' before end of input"},
		{"bad char", "x := $;", `1:6: unexpected character '$'`},
		{"overflow", "x := 99999999999999999999;", "1:6: integer 99999999999999999999 overflows int64"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error %q", c.src, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("Parse(%q) error = %q, want it to contain %q", c.src, err.Error(), c.want)
			}
		})
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse("x := 1 + 2 * 3 < 10;")
	if err != nil {
		t.Fatal(err)
	}
	// (1 + (2*3)) < 10 — comparison loosest, multiplication tightest.
	cmp, ok := prog.Stmts[0].(*Assign).X.(*Binary)
	if !ok || cmp.Op != "<" {
		t.Fatalf("top operator = %+v, want <", prog.Stmts[0].(*Assign).X)
	}
	add, ok := cmp.X.(*Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("left of < is %+v, want +", cmp.X)
	}
	mul, ok := add.Y.(*Binary)
	if !ok || mul.Op != "*" {
		t.Fatalf("right of + is %+v, want *", add.Y)
	}
}

// FuzzParse asserts the front-end never panics and that error messages
// always carry a position.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"x := 1;",
		"proc p { when x > 0; x := x + 1; }\nproc q { x := 0; }\nchoo(p, q);",
		"while x < 10 { x := x + 1; if x % 2 == 0 { print x; } else { } }",
		"x := -(1 + 2) * !0 / 3 % 4;",
		"// comment\nchoo(", "proc", "when", "x :=", "}{", "\x00", "π := 1;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			if !strings.Contains(err.Error(), ":") {
				t.Errorf("error without a position: %q", err.Error())
			}
			return
		}
		// A resolved program's choo references are always declared.
		for _, s := range prog.Stmts {
			if c, isChoo := s.(*Choo); isChoo {
				for _, n := range c.Procs {
					if prog.Procs[n] == nil {
						t.Errorf("resolved program references undeclared %q", n)
					}
				}
			}
		}
	})
}
