// Package choo is a small imperative language front-end for Kwon's
// choice-conjunctive procedure declarations (choo(S,R), PAPERS.md): a
// choo statement names two or more declared procedures and runs them
// as the alternatives of a block — mutually exclusive by construction,
// exactly one's effects survive. Variables live in shared sink pages
// of an STM store (internal/stm), so the procedures of a group race
// over genuinely shared state through the multiple-worlds message
// layer; `when` guards are enabling conditions evaluated against the
// state the group was entered with; `print` rides the paper's deferred
// console-source machinery, so a losing procedure's output is never
// observable.
//
// Grammar (comments run // to end of line):
//
//	program  := (procDecl | stmt)*
//	procDecl := "proc" IDENT "{" ["when" expr ";"] stmt* "}"
//	stmt     := IDENT ":=" expr ";"
//	          | "choo" "(" IDENT "," IDENT {"," IDENT} ")" ";"
//	          | "if" expr "{" stmt* "}" ["else" "{" stmt* "}"]
//	          | "while" expr "{" stmt* "}"
//	          | "print" expr ";"
//	expr     := integer arithmetic and comparison over int64
//	            (+ - * / % == != < <= > >= ! unary-), parentheses;
//	            comparisons yield 1/0, conditions test non-zero.
package choo

import "fmt"

// Pos is a source position (1-based).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Expr is an expression node.
type Expr interface {
	Position() Pos
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Position() Pos
	stmtNode()
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// VarRef reads a variable (unassigned variables read as 0).
type VarRef struct {
	Pos  Pos
	Name string
}

// Unary is -x or !x.
type Unary struct {
	Pos Pos
	Op  string
	X   Expr
}

// Binary is a binary operation; comparisons evaluate to 1 or 0.
type Binary struct {
	Pos  Pos
	Op   string
	X, Y Expr
}

func (e *IntLit) Position() Pos { return e.Pos }
func (e *VarRef) Position() Pos { return e.Pos }
func (e *Unary) Position() Pos  { return e.Pos }
func (e *Binary) Position() Pos { return e.Pos }

func (*IntLit) exprNode() {}
func (*VarRef) exprNode() {}
func (*Unary) exprNode()  {}
func (*Binary) exprNode() {}

// Assign is IDENT := expr.
type Assign struct {
	Pos  Pos
	Name string
	X    Expr
}

// If is a conditional (Else may be nil).
type If struct {
	Pos  Pos
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// While is a loop.
type While struct {
	Pos  Pos
	Cond Expr
	Body []Stmt
}

// Print emits the expression's value.
type Print struct {
	Pos Pos
	X   Expr
}

// Choo invokes a choice-conjunctive group: the named procedures run as
// the alternatives of a block.
type Choo struct {
	Pos   Pos
	Procs []string
}

func (s *Assign) Position() Pos { return s.Pos }
func (s *If) Position() Pos     { return s.Pos }
func (s *While) Position() Pos  { return s.Pos }
func (s *Print) Position() Pos  { return s.Pos }
func (s *Choo) Position() Pos   { return s.Pos }

func (*Assign) stmtNode() {}
func (*If) stmtNode()     {}
func (*While) stmtNode()  {}
func (*Print) stmtNode()  {}
func (*Choo) stmtNode()   {}

// ProcDecl is a procedure declaration. When, if non-nil, is the
// enabling condition (the body's leading "when expr;"): a procedure
// whose When evaluates false refuses its group, failing that
// alternative.
type ProcDecl struct {
	Pos  Pos
	Name string
	When Expr
	Body []Stmt
}

// Program is a parsed and resolved choo program.
type Program struct {
	// Procs maps name → declaration.
	Procs map[string]*ProcDecl
	// Stmts are the top-level statements in source order.
	Stmts []Stmt
	// Vars is every variable the program mentions, sorted — the fixed
	// name → sink-page assignment (index = store key).
	Vars []string
}

// VarKey returns the store key for a variable (resolved programs only
// mention known variables).
func (p *Program) VarKey(name string) int {
	for i, v := range p.Vars {
		if v == name {
			return i
		}
	}
	return -1
}
