package choo

import (
	"errors"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestOracleStraightLine(t *testing.T) {
	prog := mustParse(t, `
x := 2;
while x < 10 { x := x * 3; }
print x;
if x == 18 { y := 1; } else { y := 2; }
`)
	outs, err := Oracle(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("outcomes = %d, want 1 for a choo-free program", len(outs))
	}
	o := outs[0]
	if o.Vars["x"] != 18 || o.Vars["y"] != 1 {
		t.Errorf("vars = %v, want x=18 y=1", o.Vars)
	}
	if len(o.Prints) != 1 || o.Prints[0] != "18" {
		t.Errorf("prints = %v, want [18]", o.Prints)
	}
	if len(o.Winners) != 0 {
		t.Errorf("winners = %v, want none", o.Winners)
	}
}

func TestOracleBranchesPerViableProc(t *testing.T) {
	prog := mustParse(t, `
proc a { x := 1; }
proc b { x := 2; }
proc c { when 0; x := 3; }
choo(a, b, c);
`)
	outs, err := Oracle(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	// c's when is statically false: only a and b can commit.
	got := map[int64]bool{}
	for _, o := range outs {
		got[o.Vars["x"]] = true
	}
	if len(outs) != 2 || !got[1] || !got[2] {
		t.Fatalf("outcomes = %+v, want exactly x=1 and x=2", outs)
	}
}

func TestOracleChainedChoiceDependsOnEarlierWinner(t *testing.T) {
	prog := mustParse(t, `
proc a { x := 1; }
proc b { x := 2; }
proc lo { when x == 1; y := 10; }
proc hi { when x == 2; y := 20; }
choo(a, b);
choo(lo, hi);
print y;
`)
	outs, err := Oracle(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(outs))
	}
	for _, o := range outs {
		if o.Vars["y"] != o.Vars["x"]*10 {
			t.Errorf("outcome %v violates y == 10x", o.Vars)
		}
		if len(o.Prints) != 1 {
			t.Errorf("prints = %v, want one line", o.Prints)
		}
	}
}

func TestOracleDedupsIdenticalOutcomes(t *testing.T) {
	prog := mustParse(t, `
proc a { x := 7; }
proc b { x := 7; }
choo(a, b);
`)
	outs, err := Oracle(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("outcomes = %d, want 1 (a and b are observationally equal)", len(outs))
	}
}

func TestOracleAllRefuseFails(t *testing.T) {
	prog := mustParse(t, `
proc a { when 0; x := 1; }
proc b { when x > 5; x := 2; }
choo(a, b);
`)
	_, err := Oracle(prog, 0)
	if err == nil {
		t.Fatal("Oracle succeeded, want every-procedure-refused error")
	}
}

func TestOracleStepBudget(t *testing.T) {
	prog := mustParse(t, `while 1 { x := x + 1; }`)
	_, err := Oracle(prog, 0)
	if !errors.Is(err, ErrSteps) {
		t.Fatalf("err = %v, want ErrSteps", err)
	}
}

func TestOutcomeMatches(t *testing.T) {
	o := Outcome{Vars: map[string]int64{"x": 1}, Prints: []string{"1"}}
	if !o.Matches(map[string]int64{"x": 1}, []string{"1"}) {
		t.Error("exact match rejected")
	}
	if o.Matches(map[string]int64{"x": 2}, []string{"1"}) {
		t.Error("wrong var accepted")
	}
	if o.Matches(map[string]int64{"x": 1}, nil) {
		t.Error("missing print accepted")
	}
}
